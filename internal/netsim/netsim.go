package netsim

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/fact"
	"repro/internal/generate"
	"repro/internal/obs"
	"repro/internal/transducer"
)

// Routing selects how a send set reaches other nodes.
type Routing int

const (
	// RouteBroadcast delivers every sent fact to every other node —
	// the paper's Section 4.1.3 semantics and the default. With a nil
	// topology this engine's lockstep primitives are byte-identical to
	// transducer.Simulation.
	RouteBroadcast Routing = iota
	// RouteNeighbors delivers sent facts only to the sender's
	// topology neighbors (hop-by-hop networking in the style of the
	// declarative-networking systems the paper targets). Requires a
	// topology, and a strategy that relays — core.Gossip — for facts
	// to cross the graph.
	RouteNeighbors
)

// String names the routing in the form ParseRouting accepts.
func (r Routing) String() string {
	if r == RouteNeighbors {
		return "neighbors"
	}
	return "broadcast"
}

// ParseRouting parses a routing name (the -routing CLI flag).
func ParseRouting(s string) (Routing, error) {
	switch s {
	case "broadcast":
		return RouteBroadcast, nil
	case "neighbors":
		return RouteNeighbors, nil
	default:
		return 0, fmt.Errorf("netsim: unknown routing %q (want broadcast|neighbors)", s)
	}
}

// Options configures a simulator instance.
type Options struct {
	// Topo, when set, must describe exactly the network's nodes; it
	// scopes neighbor routing and stretches latencies across WAN
	// clusters. Nil means fully connected with unit latency.
	Topo *generate.Topology
	// Routing picks broadcast (default) or neighbor delivery.
	Routing Routing
	// Seed drives the event queue's tiebreak hash.
	Seed int64
	// MaxEvents bounds the event-driven run; 0 picks a default scaled
	// to the network size. Exhausting it yields ErrNoQuiescence.
	MaxEvents int
	// Want, when set, is the oracle Q(I): any output fact outside it
	// is recorded in WrongFacts as it appears.
	Want *fact.Instance
}

// heldMsg mirrors the lockstep engine's delayed-message queue entry.
type heldMsg struct {
	release int
	f       fact.Fact
	n       int
}

// Sim is one simulator instance: a transducer network plus either
// scheduler. The lockstep primitives (Heartbeat, Deliver, ...)
// implement transducer.Machine with the exact semantics, metrics and
// event stream of transducer.Simulation, so the schedule explorer can
// drive this engine interchangeably; Run is the event-driven
// scheduler that makes idle nodes free.
type Sim struct {
	Net   transducer.Network
	Trans *transducer.Transducer
	Pol   transducer.Policy
	Mod   transducer.Model

	opts Options
	step transducer.Stepper
	idx  map[transducer.NodeID]int

	local   []*fact.Instance
	state   []*fact.Instance
	inbox   []*transducer.Multiset
	sentLog []*fact.Instance
	held    [][]heldMsg // lockstep-mode delayed messages

	faults *transducer.FaultPlan
	clock  int // lockstep transition-attempt clock

	// Event-driven scheduler state (Run).
	heap     evHeap
	seq      uint64
	pending  []int64 // scheduled activation time per node, -1 if none
	now      int64
	inflight int // message copies inside evArrive events

	// Scheduler accounting: events popped, scheduler operations
	// charged (node visits), heap high-water mark.
	events   int
	schedOps int
	heapMax  int

	met transducer.Metrics
	// WrongFacts collects output facts outside Options.Want, in the
	// order they appeared (empty when no oracle is set).
	WrongFacts []fact.Fact

	sink *obs.Sink
}

// New validates the components and builds the start configuration.
// When opts.Topo is set it must enumerate exactly the network's nodes.
func New(net transducer.Network, t *transducer.Transducer, pol transducer.Policy, mod transducer.Model, input *fact.Instance, opts Options) (*Sim, error) {
	if len(net) == 0 {
		return nil, fmt.Errorf("netsim: empty network")
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	var bad *fact.Fact
	input.Each(func(f fact.Fact) bool {
		if !t.Schema.In.Covers(f) {
			g := f
			bad = &g
			return false
		}
		return true
	})
	if bad != nil {
		return nil, fmt.Errorf("netsim: input fact %v not over input schema %v", *bad, t.Schema.In)
	}
	if opts.Topo != nil {
		if opts.Topo.Len() != len(net) {
			return nil, fmt.Errorf("netsim: topology has %d nodes, network %d", opts.Topo.Len(), len(net))
		}
		for i, x := range net {
			if opts.Topo.Node(i) != x {
				return nil, fmt.Errorf("netsim: topology node %d is %s, network has %s", i, opts.Topo.Node(i), x)
			}
		}
	}
	if opts.Routing == RouteNeighbors && opts.Topo == nil {
		return nil, fmt.Errorf("netsim: neighbor routing needs a topology")
	}
	s := &Sim{
		Net:   net,
		Trans: t,
		Pol:   pol,
		Mod:   mod,
		opts:  opts,
		step:  transducer.Stepper{Net: net, Trans: t, Pol: pol, Mod: mod},
		idx:   make(map[transducer.NodeID]int, len(net)),
	}
	n := len(net)
	s.local = make([]*fact.Instance, n)
	s.state = make([]*fact.Instance, n)
	s.inbox = make([]*transducer.Multiset, n)
	s.sentLog = make([]*fact.Instance, n)
	s.held = make([][]heldMsg, n)
	s.pending = make([]int64, n)
	frag := transducer.Dist(pol, net, input)
	for i, x := range net {
		s.idx[x] = i
		s.local[i] = frag[x]
		s.state[i] = fact.NewInstance()
		s.inbox[i] = transducer.NewMultiset()
		s.sentLog[i] = fact.NewInstance()
		s.pending[i] = -1
	}
	return s, nil
}

// NetworkOf builds the transducer network over a topology's nodes.
func NetworkOf(topo *generate.Topology) transducer.Network {
	return transducer.MustNetwork(topo.Nodes()...)
}

// MachineFactory adapts the engine to the schedule explorer: the
// returned factory builds a Sim for whatever components the explorer
// assembled, so transducer.ExploreSchedules runs its schedules on the
// event engine's lockstep primitives.
func MachineFactory(opts Options) transducer.MachineFactory {
	return func(net transducer.Network, t *transducer.Transducer, pol transducer.Policy, mod transducer.Model, input *fact.Instance) (transducer.Machine, error) {
		return New(net, t, pol, mod, input, opts)
	}
}

// Observe attaches a structured event sink (the sim.* and netsim.*
// kinds of internal/obs). Pass nil to disable.
func (s *Sim) Observe(sink *obs.Sink) { s.sink = sink }

// TraceTo renders transitions through the legacy text format, exactly
// like Simulation.TraceTo. Pass nil to disable.
func (s *Sim) TraceTo(w io.Writer) {
	if w == nil {
		s.sink = nil
		return
	}
	s.sink = transducer.NewLegacyTraceSink(w)
}

// SetFaults installs a fault plan. Install before stepping: decisions
// are functions of the clock (lockstep) or logical time (event mode).
func (s *Sim) SetFaults(p *transducer.FaultPlan) { s.faults = p }

// Clock returns the lockstep transition-attempt count.
func (s *Sim) Clock() int { return s.clock }

// Now returns the event scheduler's logical time.
func (s *Sim) Now() int64 { return s.now }

// Events returns how many events the event scheduler popped.
func (s *Sim) Events() int { return s.events }

// SchedOps returns the scheduler operations charged so far: one per
// node visit — per activation in event mode, per node per round in the
// dense modes. The dense/event ratio on a workload is the
// idle-nodes-cost-nothing win.
func (s *Sim) SchedOps() int { return s.schedOps }

// HeapMax returns the event queue's high-water depth.
func (s *Sim) HeapMax() int { return s.heapMax }

// Inflight returns message copies riding inside arrival events.
func (s *Sim) Inflight() int { return s.inflight }

// RunMetrics returns the accumulated simulation counters.
func (s *Sim) RunMetrics() transducer.Metrics { return s.met }

// FaultsDone reports whether every fault-plan window lies behind the
// lockstep clock (event-mode runs never consult it: crashes there are
// pre-scheduled queue events, so the drained heap implies the plan
// has played out).
func (s *Sim) FaultsDone() bool {
	return s.faults == nil || s.clock >= s.faults.Horizon()
}

// Conserved checks the message conservation invariant: every sent
// copy is delivered, buffered, held, in flight, or dropped.
func (s *Sim) Conserved() bool {
	return s.met.MessagesSent == s.met.MessagesDelivered+s.TotalBuffered()+s.TotalHeld()+s.inflight+s.met.MessagesDropped
}

// Output returns out(R) so far: the union over all nodes of their
// output facts.
func (s *Sim) Output() *fact.Instance {
	out := fact.NewInstance()
	for i := range s.Net {
		out.AddAll(s.state[i].Restrict(s.Trans.Schema.Out))
	}
	return out
}

// State returns a copy of node x's current state.
func (s *Sim) State(x transducer.NodeID) *fact.Instance { return s.state[s.idx[x]].Clone() }

// TotalBuffered returns the message instances waiting in all inboxes.
func (s *Sim) TotalBuffered() int {
	total := 0
	for _, b := range s.inbox {
		total += b.Size()
	}
	return total
}

// TotalHeld returns the instances the lockstep fault layer holds back.
func (s *Sim) TotalHeld() int {
	total := 0
	for _, q := range s.held {
		for _, h := range q {
			total += h.n
		}
	}
	return total
}

// BufferedFacts returns the facts buffered at x in sorted key order,
// copies collapsed — the same reproducible walk Simulation exposes.
func (s *Sim) BufferedFacts(x transducer.NodeID) []fact.Fact {
	b := s.inbox[s.idx[x]]
	keys := b.SortedKeys()
	fs := make([]fact.Fact, 0, len(keys))
	for _, k := range keys {
		f, _ := b.Fact(k)
		fs = append(fs, f)
	}
	return fs
}

// KnownValues returns the values node x has seen: its identifier plus
// the active domains of its fragment and state.
func (s *Sim) KnownValues(x transducer.NodeID) fact.ValueSet {
	i := s.idx[x]
	known := s.local[i].ADom()
	for v := range s.state[i].ADom() {
		known.Add(v)
	}
	known.Add(x)
	return known
}

// eachRecipient enumerates the nodes that receive node i's sends
// under the configured routing, in network (== index) order.
func (s *Sim) eachRecipient(i int, fn func(j int)) {
	if s.opts.Routing == RouteNeighbors {
		for _, j := range s.opts.Topo.Neighbors(i) {
			fn(int(j))
		}
		return
	}
	for j := range s.Net {
		if j != i {
			fn(j)
		}
	}
}

// latency returns the logical delivery time of a hop from i to j.
func (s *Sim) latency(i, j int) int64 {
	if s.opts.Topo == nil {
		return 1
	}
	return int64(s.opts.Topo.Latency(i, j))
}

// ---------------------------------------------------------------------
// Lockstep primitives: the transducer.Machine implementation, mirror
// images of the Simulation methods of the same names. With a nil
// topology and broadcast routing the metrics, event stream and final
// output are byte-identical to the tick engine's (pinned by the
// equivalence tests); a topology scopes routing and nothing else.

// begin opens one transition attempt (see Simulation.begin).
func (s *Sim) begin(x transducer.NodeID) (stalled bool) {
	s.clock++
	if s.faults == nil {
		return false
	}
	for _, c := range s.faults.Crashes {
		if c.At == s.clock {
			s.crash(c.Node)
		}
	}
	s.releaseHeld()
	if s.faults.StalledAt(x, s.clock) {
		s.met.StalledSteps++
		transducer.EmitStall(s.sink, s.met.Transitions, s.clock, x)
		return true
	}
	return false
}

// releaseHeld drains expired holds into their recipients' inboxes.
func (s *Sim) releaseHeld() {
	for i := range s.Net {
		q := s.held[i]
		if len(q) == 0 {
			continue
		}
		keep := q[:0]
		for _, h := range q {
			if h.release <= s.clock {
				s.inbox[i].Add(h.f, h.n)
			} else {
				keep = append(keep, h)
			}
		}
		s.held[i] = keep
	}
}

// crash applies a lockstep crash-restart (see Simulation.crash): the
// volatile state and buffered/held messages drop, the durable input
// fragment survives, and the rebroadcast sources refill the inbox
// from their send logs. Under neighbor routing only nodes that could
// reach x resend — the same sources whose sends built x's state.
func (s *Sim) crash(x transducer.NodeID) {
	if !s.Net.Has(x) {
		return
	}
	i := s.idx[x]
	dropped := s.inbox[i].Size()
	for _, h := range s.held[i] {
		dropped += h.n
	}
	s.met.MessagesDropped += dropped
	s.state[i] = fact.NewInstance()
	s.inbox[i] = transducer.NewMultiset()
	s.held[i] = nil
	s.eachRecipient(i, func(y int) {
		for _, f := range s.sentLog[y].Facts() {
			s.inbox[i].Add(f, 1)
			s.met.MessagesSent++
			s.met.MessagesRetransmitted++
		}
	})
	s.met.Crashes++
	transducer.EmitCrash(s.sink, s.met.Transitions, s.clock, x, dropped, s.inbox[i].Size())
}

// send routes one (fact, recipient) pair through the fault plan.
func (s *Sim) send(from, to transducer.NodeID, f fact.Fact) {
	copies, delay := 1, 0
	if s.faults != nil {
		copies += s.faults.ExtraCopies(s.clock, from, to, f)
		delay = s.faults.HoldFor(s.clock, from, to, f)
	}
	s.met.MessagesSent += copies
	s.met.MessagesDuplicated += copies - 1
	j := s.idx[to]
	if delay > 0 {
		s.held[j] = append(s.held[j], heldMsg{release: s.clock + delay, f: f, n: copies})
		s.met.MessagesDelayed += copies
		transducer.EmitHold(s.sink, s.clock, from, to, f, copies, s.clock+delay)
	} else {
		s.inbox[j].Add(f, copies)
	}
}

// transition performs one lockstep transition of x with the delivered
// set m (already removed from the inbox).
func (s *Sim) transition(x transducer.NodeID, m *fact.Instance) (changed bool, err error) {
	i := s.idx[x]
	res, err := s.step.Step(x, s.local[i], s.state[i], m)
	if err != nil {
		return false, err
	}
	changed = res.Changed
	snd := res.Sent

	if !snd.Empty() {
		s.eachRecipient(i, func(j int) {
			for _, f := range snd.Facts() {
				s.send(x, s.Net[j], f)
			}
			changed = true
		})
		for _, f := range snd.Facts() {
			s.sentLog[i].Add(f)
		}
	}
	s.noteOut(res.OutNew)

	s.met.Transitions++
	if m.Empty() {
		s.met.Heartbeats++
	}
	if s.sink != nil {
		held := 0
		for _, h := range s.held[i] {
			held += h.n
		}
		transducer.EmitTransition(s.sink, s.met.Transitions, s.clock, x, m, snd.Len(), changed,
			s.state[i].Restrict(s.Trans.Schema.Out).Len(), s.inbox[i].Size(), held)
	}
	return changed, nil
}

// noteOut checks freshly produced output facts against the oracle.
func (s *Sim) noteOut(outNew []fact.Fact) {
	if s.opts.Want == nil {
		return
	}
	for _, f := range outNew {
		if !s.opts.Want.Has(f) {
			s.WrongFacts = append(s.WrongFacts, f)
		}
	}
}

// Heartbeat performs a heartbeat transition of x.
func (s *Sim) Heartbeat(x transducer.NodeID) (bool, error) {
	if !s.Net.Has(x) {
		return false, fmt.Errorf("netsim: node %s not in network", x)
	}
	if s.begin(x) {
		return false, nil
	}
	return s.transition(x, fact.NewInstance())
}

// Deliver performs a transition of x delivering its entire inbox.
func (s *Sim) Deliver(x transducer.NodeID) (bool, error) {
	if !s.Net.Has(x) {
		return false, fmt.Errorf("netsim: node %s not in network", x)
	}
	if s.begin(x) {
		return false, nil
	}
	m, n := s.inbox[s.idx[x]].TakeAll()
	s.met.MessagesDelivered += n
	return s.transition(x, m)
}

// takeBatch removes every kept fact (all copies) in sorted key order.
func (s *Sim) takeBatch(x transducer.NodeID, keep func(fact.Fact) bool) *fact.Instance {
	b := s.inbox[s.idx[x]]
	m := fact.NewInstance()
	for _, k := range b.SortedKeys() {
		f, c := b.Fact(k)
		if !keep(f) {
			continue
		}
		s.met.MessagesDelivered += c
		m.Add(f)
		b.RemoveKey(k)
	}
	return m
}

// DeliverWhere delivers exactly the buffered facts satisfying pred.
func (s *Sim) DeliverWhere(x transducer.NodeID, pred func(fact.Fact) bool) (bool, error) {
	if !s.Net.Has(x) {
		return false, fmt.Errorf("netsim: node %s not in network", x)
	}
	if s.begin(x) {
		return false, nil
	}
	return s.transition(x, s.takeBatch(x, pred))
}

// DeliverBatch delivers exactly the planned batch.
func (s *Sim) DeliverBatch(x transducer.NodeID, batch *fact.Instance) (bool, error) {
	if !s.Net.Has(x) {
		return false, fmt.Errorf("netsim: node %s not in network", x)
	}
	if s.begin(x) {
		return false, nil
	}
	return s.transition(x, s.takeBatch(x, batch.Has))
}

// DeliverRandom delivers a random submultiset of x's inbox.
func (s *Sim) DeliverRandom(x transducer.NodeID, rng *rand.Rand) (bool, error) {
	if !s.Net.Has(x) {
		return false, fmt.Errorf("netsim: node %s not in network", x)
	}
	if s.begin(x) {
		return false, nil
	}
	m, n := s.inbox[s.idx[x]].TakeRandom(rng)
	s.met.MessagesDelivered += n
	return s.transition(x, m)
}

// RunFair activates the nodes round-robin with full delivery until a
// full round changes nothing — Simulation.RunToQuiescence on this
// engine, with scheduler operations charged per node visit. It is the
// dense baseline the event scheduler is measured against, and honors
// the configured routing.
func (s *Sim) RunFair(maxRounds int) (*fact.Instance, error) {
	for round := 0; round < maxRounds; round++ {
		roundChanged := false
		for _, x := range s.Net {
			s.schedOps++
			changed, err := s.Deliver(x)
			if err != nil {
				return nil, err
			}
			if changed {
				roundChanged = true
			}
		}
		if !roundChanged && s.TotalBuffered() == 0 && s.TotalHeld() == 0 && s.FaultsDone() {
			transducer.EmitQuiesce(s.sink, s.clock, round+1, s.Output().Len())
			return s.Output(), nil
		}
	}
	return nil, fmt.Errorf("%w (maxRounds=%d)", transducer.ErrNoQuiescence, maxRounds)
}

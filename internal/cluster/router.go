package cluster

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

// Router speaks the single-node NDJSON protocol over a Cluster: the
// same request lines, the same response shapes, so every existing
// client (calmload, scripts, humans with netcat) works against a
// sharded deployment unchanged. It implements serve.Handler, so
// serve.NewTCPServerFor gives it the same TCP front end as a Core.
//
// Each connection gets an affinity shard (round-robin at accept) and
// an own-write fence: the global log position of its last write.
// Under a coordination-free plan a read waits only for that fence —
// read-your-writes, nothing more, the weakest sequencing that is
// still sane to program against and exactly what monotone queries
// need (anything later is a superset). Under a fenced plan a read
// waits for its shards to reach the log tip observed at arrival.
//
// Requests are handled synchronously per connection (responses are
// trivially in request order); concurrency comes from connections,
// and inside the cluster from the asynchronous shard pumps.
//
// Tracing: when the cluster has a Tracer, each request is a srv.req
// root span with TraceID (connection id, request line number) —
// positional, never random. The write path nests
// cluster.log_append → pump deliveries (detached traces); the
// partitioned read path nests cluster.gather with fanout/merge
// children, and the wire encode of a gathered fact response is the
// cluster.gather_render phase.
type Router struct {
	c    *Cluster
	next atomic.Int64
}

// NewRouter wraps a cluster in the NDJSON protocol.
func NewRouter(c *Cluster) *Router { return &Router{c: c} }

// Cluster returns the routed cluster.
func (r *Router) Cluster() *Cluster { return r.c }

// conn is one connection's routing state.
type conn struct {
	r        *Router
	id       int64 // trace connection id (1-based accept order)
	seq      int64 // request line number on this connection
	affinity int
	lastG    int // global log position of this connection's last write
}

func (r *Router) newConn() *conn {
	n := len(r.c.shards)
	id := r.next.Add(1)
	return &conn{r: r, id: id, affinity: int(id-1) % n}
}

// handle routes one decoded request. tc is the request's span context
// (disabled when tracing is off).
func (cn *conn) handle(req serve.Request, tc obs.SpanCtx) serve.Response {
	c := cn.r.c
	switch {
	case req.Op == "cluster":
		c.reads.Inc()
		aff := cn.affinity
		if c.plan.Partitioned {
			aff = -1
		}
		logLen, hs := c.Health()
		body := &serve.ClusterBody{
			Shards:     len(c.shards),
			Placement:  string(c.place),
			Plan:       string(c.plan.Coordination),
			Fragment:   string(c.plan.Fragment),
			Log:        logLen,
			Watermarks: make([]int, len(hs)),
			Affinity:   aff,
			Applied:    make([]int, len(hs)),
			Held:       make([]int, len(hs)),
			Lag:        make([]int, len(hs)),
		}
		for j, h := range hs {
			body.Watermarks[j] = h.Watermark
			body.Applied[j] = h.Applied
			body.Held[j] = h.Held
			body.Lag[j] = h.Lag
		}
		return serve.Response{OK: true, Cluster: body}
	case serve.IsWrite(req.Op):
		resp, g := c.SubmitWriteCtx(req, tc)
		if g > 0 {
			cn.lastG = g
		}
		return resp
	case serve.IsRead(req.Op):
		fence := cn.lastG
		if c.plan.Coordination == CoordFenced {
			// A fenced read is coordination by plan: every consulted
			// shard must reach the log tip observed at arrival.
			fence = c.LogLen()
			c.fencedReads.Inc()
			fr := tc.Start(obs.SpanCoordFencedRead)
			fr.SetSeq(fence)
			resp := c.ReadCtx(cn.affinity, req, fence, fr.Ctx())
			fr.Finish()
			return resp
		}
		return c.ReadCtx(cn.affinity, req, fence, tc)
	}
	c.errors.Inc()
	return serve.ErrResp("unknown op %q", req.Op)
}

// handleLine decodes and routes one request line; span is the
// request's srv.req span (finished by the caller after render).
func (cn *conn) handleLine(line []byte, span *obs.ActiveSpan) serve.Response {
	var req serve.Request
	if err := json.Unmarshal(line, &req); err != nil {
		cn.r.c.errors.Inc()
		span.Attr("op", "?")
		return serve.ErrResp("bad request: %v", err)
	}
	span.Attr("op", req.Op)
	if req.Rel != "" {
		span.Attr("rel", req.Rel)
	}
	return cn.handle(req, span.Ctx())
}

// Serve runs the request loop until EOF — the cluster twin of
// Core.Serve, with the same framing and error behavior: malformed
// JSON answers an error response and continues; a scanner failure
// sends one final error response and propagates.
func (r *Router) Serve(rd io.Reader, w io.Writer) error {
	const maxLine = 16 * 1024 * 1024
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), maxLine)
	bw := bufio.NewWriter(w)
	cn := r.newConn()
	c := r.c

	writeResp := func(resp serve.Response, span *obs.ActiveSpan) error {
		// The wire encode of a gathered fact response is the gather's
		// render phase (the third leg of the PERF.9 breakdown).
		gathered := c.plan.Partitioned && resp.Facts != nil
		var rs *obs.ActiveSpan
		var start time.Time
		if gathered {
			rs = span.Ctx().Start(obs.SpanGatherRender)
			if c.reg != nil {
				start = time.Now()
			}
		}
		b, err := resp.Encode()
		if gathered {
			rs.Attr("bytes", len(b)).Finish()
			if !start.IsZero() {
				c.gatherRenderNs.Observe(time.Since(start).Nanoseconds())
			}
		}
		span.Finish()
		if err != nil {
			return err
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
		return bw.Flush()
	}

	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		cn.seq++
		var span *obs.ActiveSpan
		if c.tracer != nil {
			span = c.tracer.Root(obs.TraceID{Conn: cn.id, Seq: cn.seq}).Start(obs.SpanReq)
		}
		if err := writeResp(cn.handleLine(line, span), span); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		writeResp(serve.ErrResp("read: %v", err), nil) // best effort; stream may be gone
		return fmt.Errorf("read: %w", err)
	}
	return bw.Flush()
}

var _ serve.Handler = (*Router)(nil)

package cluster

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync/atomic"

	"repro/internal/serve"
)

// Router speaks the single-node NDJSON protocol over a Cluster: the
// same request lines, the same response shapes, so every existing
// client (calmload, scripts, humans with netcat) works against a
// sharded deployment unchanged. It implements serve.Handler, so
// serve.NewTCPServerFor gives it the same TCP front end as a Core.
//
// Each connection gets an affinity shard (round-robin at accept) and
// an own-write fence: the global log position of its last write.
// Under a coordination-free plan a read waits only for that fence —
// read-your-writes, nothing more, the weakest sequencing that is
// still sane to program against and exactly what monotone queries
// need (anything later is a superset). Under a fenced plan a read
// waits for its shards to reach the log tip observed at arrival.
//
// Requests are handled synchronously per connection (responses are
// trivially in request order); concurrency comes from connections,
// and inside the cluster from the asynchronous shard pumps.
type Router struct {
	c    *Cluster
	next atomic.Int64
}

// NewRouter wraps a cluster in the NDJSON protocol.
func NewRouter(c *Cluster) *Router { return &Router{c: c} }

// Cluster returns the routed cluster.
func (r *Router) Cluster() *Cluster { return r.c }

// conn is one connection's routing state.
type conn struct {
	r        *Router
	affinity int
	lastG    int // global log position of this connection's last write
}

func (r *Router) newConn() *conn {
	n := len(r.c.shards)
	return &conn{r: r, affinity: int(r.next.Add(1)-1) % n}
}

// handle routes one decoded request.
func (cn *conn) handle(req serve.Request) serve.Response {
	c := cn.r.c
	switch {
	case req.Op == "cluster":
		c.reads.Inc()
		aff := cn.affinity
		if c.plan.Partitioned {
			aff = -1
		}
		return serve.Response{OK: true, Cluster: &serve.ClusterBody{
			Shards:     len(c.shards),
			Placement:  string(c.place),
			Plan:       string(c.plan.Coordination),
			Fragment:   string(c.plan.Fragment),
			Log:        c.LogLen(),
			Watermarks: c.Watermarks(),
			Affinity:   aff,
		}}
	case serve.IsWrite(req.Op):
		resp, g := c.SubmitWrite(req)
		if g > 0 {
			cn.lastG = g
		}
		return resp
	case serve.IsRead(req.Op):
		fence := cn.lastG
		if c.plan.Coordination == CoordFenced {
			fence = c.LogLen()
		}
		return c.Read(cn.affinity, req, fence)
	}
	c.errors.Inc()
	return serve.ErrResp("unknown op %q", req.Op)
}

// handleLine decodes and routes one request line.
func (cn *conn) handleLine(line []byte) serve.Response {
	var req serve.Request
	if err := json.Unmarshal(line, &req); err != nil {
		cn.r.c.errors.Inc()
		return serve.ErrResp("bad request: %v", err)
	}
	return cn.handle(req)
}

// Serve runs the request loop until EOF — the cluster twin of
// Core.Serve, with the same framing and error behavior: malformed
// JSON answers an error response and continues; a scanner failure
// sends one final error response and propagates.
func (r *Router) Serve(rd io.Reader, w io.Writer) error {
	const maxLine = 16 * 1024 * 1024
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), maxLine)
	bw := bufio.NewWriter(w)
	cn := r.newConn()

	writeResp := func(resp serve.Response) error {
		b, err := resp.Encode()
		if err != nil {
			return err
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
		return bw.Flush()
	}

	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if err := writeResp(cn.handleLine(line)); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		writeResp(serve.ErrResp("read: %v", err)) // best effort; stream may be gone
		return fmt.Errorf("read: %w", err)
	}
	return bw.Flush()
}

var _ serve.Handler = (*Router)(nil)

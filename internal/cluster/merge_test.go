package cluster

import (
	"reflect"
	"testing"

	"repro/internal/fact"
)

func parseAll(t *testing.T, strs ...string) []fact.Fact {
	t.Helper()
	fs, err := fact.ParseFacts(strs)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestMergeFactLists(t *testing.T) {
	a := parseAll(t, "T(b,c)", "E(a,b)")
	b := parseAll(t, "E(x,y)", "T(a,b)")

	merged := mergeFactLists([][]fact.Fact{a, b})
	if len(merged) != 4 {
		t.Fatalf("merged %d facts, want 4: %v", len(merged), merged)
	}
	for i := 1; i < len(merged); i++ {
		if merged[i-1].Compare(merged[i]) >= 0 {
			t.Fatalf("merge not strictly sorted at %d: %v", i, merged)
		}
	}

	// The wire rendering equals FactStrings of the plain union: a
	// gathered response is byte-identical to a single node holding all
	// the facts.
	union := append(append([]fact.Fact{}, a...), b...)
	if got, want := factStringsMerged([][]fact.Fact{a, b}), fact.FactStrings(union); !reflect.DeepEqual(got, want) {
		t.Fatalf("factStringsMerged = %v, want %v", got, want)
	}
}

func TestMergeFactListsDedup(t *testing.T) {
	a := parseAll(t, "E(a,b)", "T(a,b)")
	b := parseAll(t, "E(a,b)") // overlap: only possible under a placement bug, still merged sanely
	merged := mergeFactLists([][]fact.Fact{a, b})
	if len(merged) != 2 {
		t.Fatalf("duplicate across lists not collapsed: %v", merged)
	}
}

func TestMergeFactListsEmpty(t *testing.T) {
	if got := mergeFactLists(nil); len(got) != 0 {
		t.Fatalf("merge of nothing = %v", got)
	}
	if got := factStringsMerged([][]fact.Fact{nil, {}}); len(got) != 0 {
		t.Fatalf("merge of empties = %v", got)
	}
}

package cluster

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"

	"repro/internal/datalog"
	"repro/internal/fact"
	"repro/internal/incr"
	"repro/internal/serve"
)

// TestClusterDeterminismReplicated is the cross-shard equivalence
// battery for replicated mode: concurrent clients hammer the router
// over TCP with seeded interleaved reads and writes, across shard
// counts and seeds; afterwards a single-node oracle replays the
// committed delta sequence and every routed read is byte-compared
// against the pure read function of the oracle epoch with the same
// sequence number.
//
// This is the strongest possible statement of "a sharded deployment
// is the single node": replicated shards apply the identical global
// log, so shard sequence numbers ARE oracle sequence numbers, and a
// response differing in one byte — fact order, field order, a count —
// fails the test. It subsumes convergence (the final fact sets are
// also byte-compared).
func TestClusterDeterminismReplicated(t *testing.T) {
	for _, shards := range []int{2, 4} {
		for _, seed := range []int64{1, 2, 3} {
			shards, seed := shards, seed
			t.Run(fmt.Sprintf("shards=%d/seed=%d", shards, seed), func(t *testing.T) {
				runClusterDeterminism(t, shards, seed)
			})
		}
	}
}

// detRead is one recorded read: the request, the epoch that answered
// it, and the exact wire line the router sent.
type detRead struct {
	req   serve.Request
	epoch int
	raw   string
}

func runClusterDeterminism(t *testing.T, shards int, seed int64) {
	const (
		clients = 4
		steps   = 40
	)
	// A static loop so OnLoop and Off are non-empty from the start.
	const input = "E(h0,h1)\nE(h1,h2)\nE(h2,h0)\n"

	c := newTestCluster(t, negProgram, input, Options{
		Shards: shards,
		Serve:  serve.Options{MaxBatch: 8, Pipeline: 16},
	})
	srv, err := serve.NewTCPServerFor(NewRouter(c), "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	srv.Start()

	var (
		mu     sync.Mutex
		writes = make(map[int]serve.Request) // shard seq -> the write that committed it
		reads  []detRead
	)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			if err := detClient(srv.Addr(), seed, id, steps, &mu, writes, &reads); err != nil {
				errs <- fmt.Errorf("client %d: %w", id, err)
			}
		}(id)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if len(reads) == 0 || len(writes) == 0 {
		t.Fatalf("degenerate run: %d reads, %d writes", len(reads), len(writes))
	}

	// Oracle replay: one single-node materialization, the committed
	// deltas re-applied single-threaded in sequence order.
	epochs, maxSeq := replayOracle(t, negProgram, input, writes)

	// Every routed read must be byte-identical to the oracle's pure
	// function of the epoch it echoed.
	for i, r := range reads {
		ep, ok := epochs[r.epoch]
		if !ok {
			t.Fatalf("read %d pinned unknown epoch %d", i, r.epoch)
		}
		want, err := json.Marshal(serve.ReadResponse(ep, r.req))
		if err != nil {
			t.Fatal(err)
		}
		if string(want) != r.raw {
			t.Fatalf("read %d (%s %s at epoch %d) diverges from oracle:\nrouter: %s\noracle: %s",
				i, r.req.Op, r.req.Rel, r.epoch, r.raw, want)
		}
	}

	// Every shard converged to the oracle end state, byte for byte.
	c.Quiesce()
	finalOracle, err := json.Marshal(serve.ReadResponse(epochs[maxSeq], serve.Request{Op: "facts"}))
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < c.ShardCount(); j++ {
		finalShard, err := json.Marshal(serve.ReadResponse(c.ShardCore(j).CurrentEpoch(), serve.Request{Op: "facts"}))
		if err != nil {
			t.Fatal(err)
		}
		if string(finalShard) != string(finalOracle) {
			t.Fatalf("shard %d final state diverges:\nshard:  %s\noracle: %s", j, finalShard, finalOracle)
		}
	}
}

// replayOracle replays the committed writes (keyed by dense sequence
// number) on a fresh single-node materialization and returns every
// epoch by sequence number, plus the final sequence number.
func replayOracle(t testing.TB, program, input string, writes map[int]serve.Request) (map[int]*incr.Epoch, int) {
	t.Helper()
	inst, err := fact.ParseInstance(input)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := incr.New(datalog.MustParseProgram(program), inst, incr.Options{})
	if err != nil {
		t.Fatal(err)
	}
	epochs := map[int]*incr.Epoch{oracle.Seq(): oracle.Epoch()}
	maxSeq := oracle.Seq()
	for s := range writes {
		if s > maxSeq {
			maxSeq = s
		}
	}
	for s := oracle.Seq() + 1; s <= maxSeq; s++ {
		req, ok := writes[s]
		if !ok {
			t.Fatalf("sequence numbers not dense: no recorded write for seq %d", s)
		}
		var d incr.Delta
		switch req.Op {
		case "insert":
			d.Insert, err = fact.ParseFacts(req.Facts)
		case "retract":
			d.Retract, err = fact.ParseFacts(req.Facts)
		default:
			t.Fatalf("unexpected write op %q at seq %d", req.Op, s)
		}
		if err != nil {
			t.Fatal(err)
		}
		if _, err := oracle.Apply(d); err != nil {
			t.Fatalf("oracle apply seq %d: %v", s, err)
		}
		if oracle.Seq() != s {
			t.Fatalf("oracle seq %d after applying write recorded at seq %d", oracle.Seq(), s)
		}
		epochs[s] = oracle.Epoch()
	}
	return epochs, maxSeq
}

// detClient runs one seeded client: serial request/response over its
// own TCP connection to the router (concurrency comes from the other
// clients), toggling edges in its private d<id>n* namespace and
// recording every write's committed seq and every read's raw line.
func detClient(addr string, seed int64, id, steps int, mu *sync.Mutex, writes map[int]serve.Request, reads *[]detRead) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	rng := rand.New(rand.NewSource(seed*1000 + int64(id)))
	present := make(map[[2]int]bool)
	const nodes = 4

	roundTrip := func(req serve.Request) (serve.Response, string, error) {
		b, err := json.Marshal(req)
		if err != nil {
			return serve.Response{}, "", err
		}
		if _, err := conn.Write(append(b, '\n')); err != nil {
			return serve.Response{}, "", err
		}
		line, err := br.ReadString('\n')
		if err != nil {
			return serve.Response{}, "", err
		}
		line = line[:len(line)-1]
		var resp serve.Response
		if err := json.Unmarshal([]byte(line), &resp); err != nil {
			return serve.Response{}, "", fmt.Errorf("bad response %q: %w", line, err)
		}
		return resp, line, nil
	}

	for step := 0; step < steps; step++ {
		if rng.Float64() < 0.4 {
			// Toggle a random edge in this client's namespace: always an
			// effective base change, so the committed seq is unique.
			e := [2]int{rng.Intn(nodes), rng.Intn(nodes)}
			op := "insert"
			if present[e] {
				op = "retract"
			}
			present[e] = !present[e]
			req := serve.Request{Op: op, Facts: []string{fmt.Sprintf("E(d%dn%d,d%dn%d)", id, e[0], id, e[1])}}
			resp, line, err := roundTrip(req)
			if err != nil {
				return err
			}
			if !resp.OK || resp.Seq == nil {
				return fmt.Errorf("write failed: %s", line)
			}
			mu.Lock()
			if prev, dup := writes[*resp.Seq]; dup {
				mu.Unlock()
				return fmt.Errorf("two writes committed at seq %d: %+v and %+v", *resp.Seq, prev, req)
			}
			writes[*resp.Seq] = req
			mu.Unlock()
			continue
		}
		var req serve.Request
		switch rng.Intn(6) {
		case 0:
			req = serve.Request{Op: "query", Rel: "T", Epoch: true}
		case 1:
			req = serve.Request{Op: "query", Rel: "E", Epoch: true}
		case 2:
			req = serve.Request{Op: "query", Rel: "Off", Epoch: true}
		case 3:
			req = serve.Request{Op: "query", Rel: "OnLoop", Epoch: true}
		case 4:
			req = serve.Request{Op: "facts", Epoch: true}
		case 5:
			req = serve.Request{Op: "stats"}
		}
		resp, line, err := roundTrip(req)
		if err != nil {
			return err
		}
		if !resp.OK {
			return fmt.Errorf("read failed: %s", line)
		}
		var at int
		switch {
		case resp.Epoch != nil:
			at = *resp.Epoch
		case resp.Stats != nil:
			at = resp.Stats.Seq
		default:
			return fmt.Errorf("read response carries no epoch: %s", line)
		}
		mu.Lock()
		*reads = append(*reads, detRead{req: req, epoch: at, raw: line})
		mu.Unlock()
	}
	return nil
}

package cluster

import (
	"encoding/json"
	"sync"
	"testing"

	"repro/internal/datalog"
	"repro/internal/fact"
)

// fuzz state: one long-lived partitioned cluster shared across fuzz
// iterations (the fuzz engine calls the target sequentially within a
// process), rebuilt when accumulated inserts grow the log too large.
// Partitioned mode is the interesting target — it exercises delta
// placement, component merging, and the scatter/gather merge on every
// routed request.
var (
	fuzzMu sync.Mutex
	fuzzR  *Router
)

func fuzzRouter(t *testing.T) *Router {
	t.Helper()
	fuzzMu.Lock()
	defer fuzzMu.Unlock()
	if fuzzR != nil && fuzzR.c.LogLen() > 20000 {
		fuzzR.c.Close()
		fuzzR = nil
	}
	if fuzzR == nil {
		inst, err := fact.ParseInstance("E(a,b)\nE(b,a)\nE(x,y)\n")
		if err != nil {
			t.Fatal(err)
		}
		c, err := New(datalog.MustParseProgram(tcProgram), inst, Options{
			Shards:    3,
			Placement: PlaceComponent,
		})
		if err != nil {
			t.Fatal(err)
		}
		fuzzR = NewRouter(c)
	}
	return fuzzR
}

// FuzzRouteRequest throws arbitrary request lines at the router's
// full decode/route/scatter/gather path on a fresh connection each
// iteration. Whatever the input, the router must neither panic nor
// deadlock, every response must be well-formed (ok xor error,
// marshalable), a gathered facts list must be strictly sorted with no
// duplicates (the Theorem 5.3 disjoint union, observable), count must
// equal the list length, and the cluster must keep serving afterwards.
func FuzzRouteRequest(f *testing.F) {
	for _, s := range fuzzSeedLines {
		f.Add([]byte(s))
	}

	f.Fuzz(func(t *testing.T, line []byte) {
		r := fuzzRouter(t)
		cn := r.newConn()
		resp := cn.handleLine(line, nil)
		if resp.OK && resp.Err != "" {
			t.Fatalf("response both ok and error: %+v", resp)
		}
		if !resp.OK && resp.Err == "" {
			t.Fatalf("failed response carries no error: %+v", resp)
		}
		if _, err := json.Marshal(resp); err != nil {
			t.Fatalf("unmarshalable response: %v", err)
		}
		if resp.Facts != nil {
			if resp.Count == nil || *resp.Count != len(resp.Facts) {
				t.Fatalf("count disagrees with facts length: %+v", resp)
			}
			var prev fact.Fact
			for i, s := range resp.Facts {
				fc, err := fact.ParseFact(s)
				if err != nil {
					t.Fatalf("gathered fact %q does not parse: %v", s, err)
				}
				if i > 0 && prev.Compare(fc) >= 0 {
					t.Fatalf("gathered facts unsorted or duplicated at %d: %q >= %q", i, resp.Facts[i-1], s)
				}
				prev = fc
			}
		}
		// Liveness: the router still answers after whatever happened.
		if ping := r.newConn().handleLine([]byte(`{"op":"ping"}`), nil); !ping.OK {
			t.Fatalf("router dead after input %q: %+v", line, ping)
		}
	})
}

// fuzzSeedLines is the in-code seed corpus, mirrored as files under
// testdata/fuzz/FuzzRouteRequest so `go test` always runs them.
var fuzzSeedLines = []string{
	// every routed op, well-formed
	`{"op":"ping"}`,
	`{"op":"query","rel":"T"}`,
	`{"op":"query","rel":"T","epoch":true}`,
	`{"op":"query","rel":"Nope"}`,
	`{"op":"facts"}`,
	`{"op":"stats"}`,
	`{"op":"cluster"}`,
	`{"op":"insert","facts":["E(c,d)"]}`,
	`{"op":"retract","facts":["E(c,d)"]}`,
	`{"op":"apply","insert":["E(p,q)"],"retract":["E(x,y)"]}`,
	// bridge write: forces a component merge and possibly a migration
	`{"op":"insert","facts":["E(b,x)"]}`,
	// rejections every router layer must produce
	`{"op":"apply","insert":["E(m,n)"],"retract":["E(m,n)"]}`,
	`{"op":"insert","facts":["T(a,b)"]}`,
	`{"op":"insert","facts":["E(a)"]}`,
	`{"op":"snapshot","path":"x"}`,
	`{"op":"query"}`,
	`{"op":"frobnicate"}`,
	`{`,
	`not json at all`,
	`{"op":42}`,
	``,
}

package cluster

import (
	"fmt"
	"hash/fnv"

	"repro/internal/fact"
)

// PlacementKind names a placement strategy.
type PlacementKind string

const (
	// PlaceHash assigns each fact to a shard by hashing its canonical
	// text — a pure function of the fact, so placement is stable
	// across restarts and identical on every router (seed-free). Hash
	// placement runs the cluster in replicated mode: every delta is
	// streamed to every shard, placement only picks the home shard
	// that acknowledges the write.
	PlaceHash PlacementKind = "hash"
	// PlaceComponent colocates each co(I) component (Section 5.1) on
	// one shard, chosen by hashing the component's minimum
	// active-domain value. Component placement runs the cluster in
	// partitioned mode when the program allows it (connected monotone
	// rules): deltas stay home, reads scatter/gather.
	PlaceComponent PlacementKind = "component"
)

// ParsePlacement parses a -placement flag value.
func ParsePlacement(s string) (PlacementKind, error) {
	switch PlacementKind(s) {
	case PlaceHash, PlaceComponent:
		return PlacementKind(s), nil
	}
	return "", fmt.Errorf("cluster: unknown placement %q (want hash or component)", s)
}

// hashShard maps a string to a shard index — FNV-64a, the repo's
// standard seed-free deterministic hash (see transducer.FaultPlan).
func hashShard(key string, shards int) int {
	h := fnv.New64a()
	h.Write([]byte(key))
	return int(h.Sum64() % uint64(shards))
}

// HashPlace returns the hash-placement home shard of one fact.
func HashPlace(f fact.Fact, shards int) int {
	return hashShard(f.Key(), shards)
}

// componentIndex is a dynamic union-find over values that tracks, per
// component, the minimum active-domain value — the pure placement key.
// It mirrors fact.Components incrementally: after any sequence of
// Observe calls, the components of the observed fact multiset equal
// co(I) of the observed instance, and Shard agrees with PlaceInstance
// on the final state.
type componentIndex struct {
	shards int
	parent map[fact.Value]fact.Value
	min    map[fact.Value]fact.Value // root → minimum value in the class
}

func newComponentIndex(shards int) *componentIndex {
	return &componentIndex{
		shards: shards,
		parent: make(map[fact.Value]fact.Value),
		min:    make(map[fact.Value]fact.Value),
	}
}

func (ci *componentIndex) find(v fact.Value) fact.Value {
	r, ok := ci.parent[v]
	if !ok {
		ci.parent[v] = v
		ci.min[v] = v
		return v
	}
	if r == v {
		return v
	}
	root := ci.find(r)
	ci.parent[v] = root
	return root
}

// union merges the classes of a and b. It returns the surviving root
// and, when a real merge happened, the absorbed root (merged=true) —
// the cluster write path uses the absorbed root to find which
// component's facts must migrate.
func (ci *componentIndex) union(a, b fact.Value) (root, absorbed fact.Value, merged bool) {
	ra, rb := ci.find(a), ci.find(b)
	if ra == rb {
		return ra, "", false
	}
	// Attach by the min-value order so the surviving root's min is the
	// overall min — deterministic regardless of observation order, and
	// the survivor's placement hash (of its min) never changes.
	if ci.min[rb] < ci.min[ra] {
		ra, rb = rb, ra
	}
	ci.parent[rb] = ra
	return ra, rb, true
}

// observe unions the fact's values and returns the component root.
func (ci *componentIndex) observe(f fact.Fact) fact.Value {
	root := ci.find(f.Arg(0))
	for n := 1; n < f.Arity(); n++ {
		root, _, _ = ci.union(root, f.Arg(n))
	}
	return root
}

// shardOf returns the shard of the component containing v: the hash of
// the component's minimum value. A pure function of the component's
// content — placing I and placing I ⊎ J (domain disjoint) agree on
// I's facts, which is the Theorem 5.3 union property the placement
// tests pin.
func (ci *componentIndex) shardOf(v fact.Value) int {
	return hashShard(string(ci.min[ci.find(v)]), ci.shards)
}

// PlaceInstance computes the component placement of a whole instance:
// co(I) via fact.Components, each component assigned by the hash of
// its minimum active-domain value. The returned map sends every fact's
// canonical Key to its shard.
func PlaceInstance(i *fact.Instance, shards int) map[string]int {
	out := make(map[string]int, i.Len())
	for _, comp := range fact.Components(i) {
		min := comp.ADom().Sorted()[0]
		s := hashShard(string(min), shards)
		comp.Each(func(f fact.Fact) bool {
			out[f.Key()] = s
			return true
		})
	}
	return out
}

package cluster

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/obs"
)

// chainLines builds E(n<i>,n<i+1>) insert lines over one chain — one
// connected component, so component placement keeps it partitioned.
func chainFacts(n int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "E(n%d,n%d)\n", i, i+1)
	}
	return sb.String()
}

// TestGatherPhaseTelemetry drives a partitioned cluster through the
// router with the full observability stack on and asserts every
// gather phase (fanout, merge, render), the write-path log append,
// and the pump delivery lag produced measurements — plus that the
// extended cluster op body carries the live per-shard progress arrays.
func TestGatherPhaseTelemetry(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer(4096, false)
	c := newTestCluster(t, tcProgram, chainFacts(8), Options{
		Shards: 2, Placement: PlaceComponent, Reg: reg, Tracer: tr,
	})
	if !c.Plan().Partitioned {
		t.Fatalf("want partitioned plan, got %+v", c.Plan())
	}
	r := NewRouter(c)

	lines := []string{
		`{"op":"insert","facts":["E(x1,x2)"]}`,
		`{"op":"query","rel":"T"}`,
		`{"op":"facts"}`,
		`{"op":"cluster"}`,
	}
	resps := routerSession(t, r, lines...)

	for _, name := range []string{
		obs.ClusterGatherNs,
		obs.ClusterGatherFanoutNs,
		obs.ClusterGatherMergeNs,
		obs.ClusterGatherRenderNs,
		obs.ClusterLogAppendNs,
	} {
		if n := reg.Latency(name).Count(); n == 0 {
			t.Errorf("latency %s recorded no observations", name)
		}
	}
	// Delivery lag is recorded by the asynchronous pumps; the gathered
	// read above fenced on the write, so the delivery already happened.
	if n := reg.Latency(obs.ClusterDeliveryLagNs).Count(); n == 0 {
		t.Errorf("latency %s recorded no observations", obs.ClusterDeliveryLagNs)
	}

	cl := decodeResp(t, resps[3])
	if cl.Cluster == nil {
		t.Fatalf("cluster op returned no body: %s", resps[3])
	}
	body := cl.Cluster
	if len(body.Applied) != 2 || len(body.Held) != 2 || len(body.Lag) != 2 {
		t.Fatalf("cluster body progress arrays = %+v, want length 2 each", body)
	}
	for j := range body.Lag {
		if body.Lag[j] != body.Log-body.Watermarks[j] {
			t.Errorf("shard %d lag = %d, want log-watermark = %d", j, body.Lag[j], body.Log-body.Watermarks[j])
		}
		if body.Held[j] != 0 {
			t.Errorf("shard %d held = %d, want 0 without a fault plan", j, body.Held[j])
		}
		if body.Applied[j] < 0 {
			t.Errorf("shard %d applied = %d", j, body.Applied[j])
		}
	}

	// The span plane saw the same phases, threaded under request roots.
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf, 0); err != nil {
		t.Fatal(err)
	}
	stream := buf.String()
	for _, span := range []string{
		obs.SpanReq, obs.SpanGather, obs.SpanGatherFanout,
		obs.SpanGatherMerge, obs.SpanGatherRender,
		obs.SpanLogAppend, obs.SpanDeliver,
	} {
		if !strings.Contains(stream, `"span":"`+span+`"`) {
			t.Errorf("span stream missing %s:\n%s", span, stream)
		}
	}

	// PublishHealth mirrors the same progress into labeled gauges.
	c.PublishHealth()
	for j := 0; j < 2; j++ {
		name := obs.WithLabel(obs.ClusterPumpLag, "shard", fmt.Sprint(j))
		if v := reg.Gauge(name).Value(); v < 0 {
			t.Errorf("gauge %s = %d", name, v)
		}
	}
}

// BenchmarkGatherPhases measures the partitioned scatter/gather read
// path end to end through the router wire loop (the PERF.9 subject),
// with phase attribution left to the latency histograms.
func BenchmarkGatherPhases(b *testing.B) {
	reg := obs.NewRegistry()
	c := newTestCluster(b, tcProgram, chainFacts(64), Options{
		Shards: 4, Placement: PlaceComponent, Reg: reg,
	})
	if !c.Plan().Partitioned {
		b.Fatalf("want partitioned plan, got %+v", c.Plan())
	}
	r := NewRouter(c)
	line := `{"op":"query","rel":"T"}` + "\n"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var out bytes.Buffer
		if err := r.Serve(strings.NewReader(line), &out); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	report := func(name, metric string) {
		h := reg.Latency(name)
		if h.Count() > 0 {
			b.ReportMetric(float64(h.Sum())/float64(h.Count()), metric)
		}
	}
	report(obs.ClusterGatherNs, "gather-ns/op")
	report(obs.ClusterGatherFanoutNs, "fanout-ns/op")
	report(obs.ClusterGatherMergeNs, "merge-ns/op")
	report(obs.ClusterGatherRenderNs, "render-ns/op")
}

// BenchmarkGatherBaseline is the single-node comparison leg for
// PERF.9: the same chain and query served by one core, no router.
func BenchmarkGatherBaseline(b *testing.B) {
	c := newTestCluster(b, tcProgram, chainFacts(64), Options{
		Shards: 1, Placement: PlaceHash,
	})
	r := NewRouter(c)
	line := `{"op":"query","rel":"T"}` + "\n"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var out bytes.Buffer
		if err := r.Serve(strings.NewReader(line), &out); err != nil {
			b.Fatal(err)
		}
	}
}

package cluster

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/datalog"
	"repro/internal/fact"
	"repro/internal/incr"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/transducer"
)

// faultyPlan is the battery's standard fault cocktail: random
// duplication and delay of replica deliveries, plus a partition window
// isolating shard 1 early in the log. Every decision is a pure
// function of (seed, log position, shard), the transducer fault model
// applied to the cluster's delta stream.
func faultyPlan(seed int64) *transducer.FaultPlan {
	return &transducer.FaultPlan{
		Seed:      seed,
		DupProb:   0.3,
		DelayProb: 0.4,
		MaxDelay:  5,
		Partitions: []transducer.Partition{
			{From: 5, To: 15, Group: []transducer.NodeID{"s1"}},
		},
	}
}

// faultRun drives one complete faulty scenario: seeded edge toggles
// through router connections with faults injected, a crash of one
// shard mid-run (losing its queued and held deliveries), more writes
// while it is down, recovery by log replay, and a final quiesce. It
// returns the final facts line of every shard plus the single-node
// oracle, which replayed EVERY submitted write — including any whose
// ack was lost to the crash: the log records a write before the pumps
// see it, so at-least-once is the contract the oracle must mirror.
func faultRun(t *testing.T, shards int, seed int64, place PlacementKind, crashShard int) (shardFinals []string, oracleFinal string) {
	t.Helper()
	const (
		conns = 3
		nodes = 8
		phase = 20 // writes per phase: pre-crash, down, post-restart
	)
	c := newTestCluster(t, tcProgram, "", Options{
		Shards:    shards,
		Placement: place,
		Faults:    faultyPlan(seed),
	})
	r := NewRouter(c)
	cns := make([]*conn, conns)
	for i := range cns {
		cns[i] = r.newConn()
	}
	oracle, err := incr.New(datalog.MustParseProgram(tcProgram), fact.NewInstance(), incr.Options{})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(seed))
	present := make(map[[2]int]bool)
	submit := func(n int, tolerateErrors bool) {
		for w := 0; w < n; w++ {
			e := [2]int{rng.Intn(nodes), rng.Intn(nodes)}
			op := "insert"
			if present[e] {
				op = "retract"
			}
			present[e] = !present[e]
			f := fmt.Sprintf("E(f%d,f%d)", e[0], e[1])
			resp := cns[rng.Intn(conns)].handle(serve.Request{Op: op, Facts: []string{f}}, obs.SpanCtx{})
			if !resp.OK && !tolerateErrors {
				t.Fatalf("write %s %s failed: %s", op, f, resp.Err)
			}
			// Valid writes reach the log even when the ack is lost to a
			// down home shard, so the oracle replays them all.
			var d incr.Delta
			fs := []fact.Fact{fact.MustParseFact(f)}
			if op == "insert" {
				d.Insert = fs
			} else {
				d.Retract = fs
			}
			if _, err := oracle.Apply(d); err != nil {
				t.Fatalf("oracle apply: %v", err)
			}
		}
	}

	submit(phase, true) // faults may delay acks but not fail them; partition holds are replica-side only
	if err := c.Crash(crashShard); err != nil {
		t.Fatal(err)
	}
	submit(phase, true) // acks lost when the down shard is the home
	if err := c.Restart(crashShard); err != nil {
		t.Fatal(err)
	}
	submit(phase, true)
	c.Quiesce()

	ep := oracle.Epoch()
	want, err := json.Marshal(serve.ReadResponse(ep, serve.Request{Op: "facts"}))
	if err != nil {
		t.Fatal(err)
	}
	finals := make([]string, shards)
	for j := 0; j < shards; j++ {
		b, err := json.Marshal(serve.ReadResponse(c.ShardCore(j).CurrentEpoch(), serve.Request{Op: "facts"}))
		if err != nil {
			t.Fatal(err)
		}
		finals[j] = string(b)
	}
	if c.plan.Partitioned {
		// Partitioned finals are per-shard slices; the cluster-level
		// answer is the gathered read, checked against the oracle here.
		compareCut(t, c, r, oracle, -1)
	}
	return finals, string(want)
}

// TestFaultyConvergenceReplicated: under duplication, delay, a
// partition window, and a crash-restart cycle, every replicated shard
// converges to the byte-exact single-node oracle state. Duplicated
// deliveries must be absorbed (applies are idempotent), held ones
// released, and the crashed shard rebuilt by log replay.
func TestFaultyConvergenceReplicated(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			finals, want := faultRun(t, 3, seed, PlaceHash, 1)
			for j, got := range finals {
				if got != want {
					t.Errorf("shard %d diverges from oracle after faults:\nshard:  %s\noracle: %s", j, got, want)
				}
			}
		})
	}
}

// TestFaultyConvergencePartitioned: the same cocktail in partitioned
// mode, where the crash also loses migration traffic in flight. After
// recovery the gathered answer equals the oracle and the shard slices
// are disjoint again (checked inside faultRun via compareCut).
func TestFaultyConvergencePartitioned(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			faultRun(t, 2, seed, PlaceComponent, 0)
		})
	}
}

// TestFaultDeterministicReplay: the entire faulty scenario is a pure
// function of its seed — rerunning it reproduces every shard's final
// state byte for byte. This is what makes fault-battery failures
// debuggable: a failing seed replays identically under a debugger.
func TestFaultDeterministicReplay(t *testing.T) {
	a1, o1 := faultRun(t, 3, 7, PlaceHash, 1)
	a2, o2 := faultRun(t, 3, 7, PlaceHash, 1)
	if o1 != o2 {
		t.Fatalf("oracle final states differ across identical runs:\n%s\n%s", o1, o2)
	}
	for j := range a1 {
		if a1[j] != a2[j] {
			t.Errorf("shard %d final state differs across identical seed-7 runs:\nrun1: %s\nrun2: %s", j, a1[j], a2[j])
		}
	}
}

// TestFaultPlanHooks pins the exported transducer hooks the cluster
// relies on: decisions are pure (same inputs, same answer) and
// actually fire at the configured probabilities over a realistic
// clock range.
func TestFaultPlanHooks(t *testing.T) {
	p := faultyPlan(42)
	f := fact.MustParseFact("E(a,b)")
	dups, holds := 0, 0
	for g := 1; g <= 200; g++ {
		for _, node := range []transducer.NodeID{"s0", "s1", "s2"} {
			d1 := p.ExtraCopies(g, routerNode, node, f)
			h1 := p.HoldFor(g, routerNode, node, f)
			if d1 != p.ExtraCopies(g, routerNode, node, f) || h1 != p.HoldFor(g, routerNode, node, f) {
				t.Fatalf("fault decision at (g=%d, %s) is not pure", g, node)
			}
			if d1 > 0 {
				dups++
			}
			if h1 > 0 {
				holds++
			}
			if h1 > p.MaxDelay && !inPartitionWindow(g) {
				t.Fatalf("hold %d exceeds MaxDelay %d outside the partition window", h1, p.MaxDelay)
			}
		}
	}
	if dups == 0 || holds == 0 {
		t.Fatalf("plan never fired: %d dups, %d holds over 600 deliveries", dups, holds)
	}
}

func inPartitionWindow(g int) bool { return g >= 5 && g < 15 }

// Package cluster is calmd's sharded coordination-free serving layer:
// N in-process serving cores (internal/serve, each owning its own
// incr.Materialization of the same program) behind a Router speaking
// the single-node NDJSON protocol, with base-fact deltas streamed
// between shards asynchronously — no barriers, no global locks on the
// data path.
//
// The design is the paper's CALM story turned into a deployment
// shape. The paper proves the monotone fragments (M, Mdistinct,
// Mdisjoint) computable by coordination-free transducer networks:
// nodes broadcast what they know, never wait for each other, and every
// fair run converges to Q(I). Here the "network" is the shard set and
// the "broadcast" is the delta stream:
//
//   - A Router accepts client writes, validates them against the
//     program schema, appends them to a global delta log, and streams
//     them to shard pumps — per-shard goroutines that apply deltas
//     through each shard's single-writer serving core. Pumps never
//     synchronize with each other; a slow shard lags, it does not
//     block the others (asynchronous rebroadcast, the transducer
//     model's fair delivery).
//
//   - Placement decides which shard is a fact's home. Hash placement
//     (default) replicates every delta to every shard in global log
//     order: shards are replicas that converge through the identical
//     apply sequence, reads route to one shard, and because the order
//     is identical, every shard's epoch s is byte-identical to a
//     single-node oracle that applied the same first s effective
//     deltas — the determinism battery leans on exactly this.
//
//   - Component placement (`co(I)`, the paper's Lemma 3.2/Theorem 5.3
//     machinery) partitions instead of replicating: each co(I)
//     component — a connectivity class of the "shares a value" graph
//     on facts — lives wholly on one shard, chosen by hashing the
//     component's minimum active-domain value. For connected monotone
//     programs every derivation stays inside one component, so shards
//     compute disjoint slices of Q(I) independently and a gathered
//     read is the disjoint union Q(I) = ⊎ Q(I_k) (Theorem 5.3). When
//     a write bridges two components resident on different shards,
//     the router migrates the absorbed component to the winner
//     (synthetic retract+insert entries at one log position),
//     restoring the every-component-whole invariant.
//
//   - The fragment classifier picks the weakest coordination plan.
//     Monotone programs (Datalog, Datalog(≠)) get coordination-free
//     reads: a read fences only on the connection's own writes (an
//     epoch vector of global log positions per shard — read your
//     writes, nothing more), because a monotone answer read early is
//     merely a subset of the answer read late, never a retraction.
//     Programs with stratified negation get fenced reads: each read
//     first waits for its shards to reach the log tip observed at
//     arrival, because non-monotone answers at stale prefixes can
//     lie. This is the CALM boundary drawn inside one server.
//
// Crash-restart recovery is rebroadcast: a restarted shard rebuilds
// from the program plus a replay of the global delta log (plus its
// deterministic share of the initial instance), then rejoins the
// stream. The fault battery reuses the PR 2 FaultPlan machinery —
// duplication, delay, partition windows, crash-restart, all pure
// functions of a seed — on the delta stream, and asserts eventual
// equality with the single-node oracle after recovery.
package cluster

package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"testing"

	"repro/internal/datalog"
	"repro/internal/fact"
	"repro/internal/incr"
	"repro/internal/obs"
	"repro/internal/serve"
)

// tcProgram is the paper's canonical monotone query: transitive
// closure. FragDatalog, connected rules — the strongest case, where
// component placement partitions and reads are coordination-free.
const tcProgram = `
T(x,y) :- E(x,y).
T(x,y) :- E(x,z), T(z,y).
`

// negProgram adds stratified negation (the serve test program): the
// classifier must fence reads and demote component placement.
const negProgram = `
T(x,y) :- E(x,y).
T(x,y) :- E(x,z), T(z,y).
OnLoop(x) :- T(x,x).
Off(x) :- E(x,y), !T(y,x).
`

func newTestCluster(t testing.TB, program, input string, opts Options) *Cluster {
	t.Helper()
	inst, err := fact.ParseInstance(input)
	if err != nil {
		t.Fatalf("parse input: %v", err)
	}
	c, err := New(datalog.MustParseProgram(program), inst, opts)
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	t.Cleanup(c.Close)
	return c
}

// routerSession runs request lines through one router connection and
// returns one response line per request line.
func routerSession(t testing.TB, r *Router, lines ...string) []string {
	t.Helper()
	var out bytes.Buffer
	if err := r.Serve(strings.NewReader(strings.Join(lines, "\n")+"\n"), &out); err != nil {
		t.Fatalf("router serve: %v", err)
	}
	got := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	if len(got) != len(lines) {
		t.Fatalf("got %d responses for %d requests:\n%s", len(got), len(lines), out.String())
	}
	return got
}

func decodeResp(t testing.TB, line string) serve.Response {
	t.Helper()
	var r serve.Response
	if err := json.Unmarshal([]byte(line), &r); err != nil {
		t.Fatalf("bad response line %q: %v", line, err)
	}
	return r
}

// encodeResp renders a response in wire-byte form for golden compares.
func encodeResp(t testing.TB, resp serve.Response) string {
	t.Helper()
	b, err := resp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestRouterBasicReplicated byte-compares a routed session against the
// exact lines a serial single-node calmd emits for the same session:
// replicated mode is wire-indistinguishable from one daemon.
func TestRouterBasicReplicated(t *testing.T) {
	c := newTestCluster(t, tcProgram, "E(a,b)\n", Options{Shards: 3})
	r := NewRouter(c)
	got := routerSession(t, r,
		`{"op":"ping"}`,
		`{"op":"insert","facts":["E(b,c)"]}`,
		`{"op":"query","rel":"T"}`,
		`{"op":"facts"}`,
		`{"op":"stats"}`,
		`{"op":"retract","facts":["E(a,b)"]}`,
		`{"op":"query","rel":"T"}`,
	)
	want := []string{
		`{"ok":true}`,
		`{"ok":true,"seq":2,"apply":{"inserted":1,"retracted":0,"added":2,"removed":0}}`,
		`{"ok":true,"count":3,"facts":["T(a,b)","T(a,c)","T(b,c)"]}`,
		`{"ok":true,"count":5,"facts":["E(a,b)","E(b,c)","T(a,b)","T(a,c)","T(b,c)"]}`,
		`{"ok":true,"stats":{"seq":2,"facts":5,"base":2,"derived":3}}`,
		`{"ok":true,"seq":3,"apply":{"inserted":0,"retracted":1,"added":0,"removed":2}}`,
		`{"ok":true,"count":1,"facts":["T(b,c)"]}`,
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("line %d:\n got %s\nwant %s", i, got[i], want[i])
		}
	}
}

func TestRouterBasicPartitioned(t *testing.T) {
	c := newTestCluster(t, tcProgram, "E(a,b)\nE(x,y)\n", Options{Shards: 4, Placement: PlaceComponent})
	if !c.Plan().Partitioned {
		t.Fatalf("tc program with component placement should partition: %+v", c.Plan())
	}
	r := NewRouter(c)
	got := routerSession(t, r,
		`{"op":"insert","facts":["E(b,c)"]}`,
		`{"op":"query","rel":"T"}`,
		`{"op":"facts"}`,
		`{"op":"stats"}`,
	)
	resp := decodeResp(t, got[0])
	if !resp.OK || resp.Seq == nil || *resp.Seq != 1 {
		t.Fatalf("partitioned write should ack with global log position 1: %s", got[0])
	}
	if resp.Apply == nil || resp.Apply.Inserted != 1 {
		t.Fatalf("partitioned write should aggregate apply stats: %s", got[0])
	}
	wantT := `{"ok":true,"count":4,"facts":["T(a,b)","T(a,c)","T(b,c)","T(x,y)"]}`
	if got[1] != wantT {
		t.Errorf("gathered T:\n got %s\nwant %s", got[1], wantT)
	}
	stats := decodeResp(t, got[3])
	if stats.Stats == nil || stats.Stats.Base != 3 || stats.Stats.Facts != 7 {
		t.Errorf("gathered stats = %s, want base 3, facts 7", got[3])
	}
	if stats.Stats.Seq != 1 {
		t.Errorf("gathered stats seq = %d, want log position 1", stats.Stats.Seq)
	}
}

// TestPartitionedMigration pins the bridge case: an insert that joins
// two components resident on different shards migrates the absorbed
// component, after which the gathered closure equals the single-node
// answer and every base fact is still homed on exactly one shard.
func TestPartitionedMigration(t *testing.T) {
	c := newTestCluster(t, tcProgram, "", Options{Shards: 2, Placement: PlaceComponent, Reg: obs.NewRegistry()})
	r := NewRouter(c)

	// A component's home is the hash of its minimum value, so two
	// chains a1→a2 and b1→b2 land on different shards iff their min
	// nodes hash apart. Search namespaces for such a pair.
	var a, b string
	for i := 0; i < 64 && a == ""; i++ {
		x, y := fmt.Sprintf("m%da", i), fmt.Sprintf("m%db", i)
		if hashShard(x+"1", 2) != hashShard(y+"1", 2) {
			a, b = x, y
		}
	}
	if a == "" {
		t.Fatal("no namespace pair hashing to different shards")
	}

	got := routerSession(t, r,
		fmt.Sprintf(`{"op":"insert","facts":["E(%s1,%s2)","E(%s1,%s2)"]}`, a, a, b, b),
		fmt.Sprintf(`{"op":"insert","facts":["E(%s2,%s1)"]}`, a, b), // bridge: merges the components
		`{"op":"query","rel":"T"}`,
	)
	for i := 0; i < 2; i++ {
		if !decodeResp(t, got[i]).OK {
			t.Fatalf("write %d failed: %s", i, got[i])
		}
	}
	// Closure of the chain a1→a2→b1→b2, rendered through the fact
	// package's own ordering so the golden matches the wire sort.
	closure := []fact.Fact{
		fact.MustParseFact(fmt.Sprintf("T(%s1,%s2)", a, a)),
		fact.MustParseFact(fmt.Sprintf("T(%s1,%s1)", a, b)),
		fact.MustParseFact(fmt.Sprintf("T(%s1,%s2)", a, b)),
		fact.MustParseFact(fmt.Sprintf("T(%s2,%s1)", a, b)),
		fact.MustParseFact(fmt.Sprintf("T(%s2,%s2)", a, b)),
		fact.MustParseFact(fmt.Sprintf("T(%s1,%s2)", b, b)),
	}
	fact.SortFacts(closure)
	strs := fact.FactStrings(closure)
	n := len(strs)
	want := encodeResp(t, serve.Response{OK: true, Count: &n, Facts: strs})
	if got[2] != want {
		t.Errorf("post-migration gather:\n got %s\nwant %s", got[2], want)
	}
	if got := c.migrations.Value(); got != 1 {
		t.Errorf("migrations counter = %d, want 1", got)
	}
	// Single homing: base facts across shards sum to the base size.
	c.Quiesce()
	total := 0
	for j := 0; j < c.ShardCount(); j++ {
		total += c.ShardCore(j).CurrentEpoch().BaseLen()
	}
	if total != 3 {
		t.Errorf("base facts across shards = %d, want 3 (single-homed)", total)
	}
}

func TestRouterValidation(t *testing.T) {
	c := newTestCluster(t, tcProgram, "", Options{Shards: 2, Placement: PlaceComponent})
	r := NewRouter(c)
	got := routerSession(t, r,
		`{"op":"insert","facts":["T(a,b)"]}`,
		`{"op":"insert","facts":["E(a)"]}`,
		`{"op":"apply","insert":["E(a,b)"],"retract":["E(a,b)"]}`,
		`{"op":"snapshot","path":"x"}`,
		`{"op":"frobnicate"}`,
		`not json`,
		`{"op":"query"}`,
		`{"op":"stats"}`,
	)
	wantErr := []string{
		"derived relation",
		"arity",
		"both insert and retract",
		"per-shard operation",
		`unknown op "frobnicate"`,
		"bad request",
		"query needs a rel",
	}
	for i, frag := range wantErr {
		resp := decodeResp(t, got[i])
		if resp.OK || !strings.Contains(resp.Err, frag) {
			t.Errorf("line %d = %s, want error containing %q", i, got[i], frag)
		}
	}
	// Rejected writes left no trace: nothing reached the log or the
	// shards.
	if c.LogLen() != 0 {
		t.Errorf("rejected writes reached the log: len %d", c.LogLen())
	}
	stats := decodeResp(t, got[7])
	if stats.Stats == nil || stats.Stats.Facts != 0 {
		t.Errorf("state not clean after rejected writes: %s", got[7])
	}
}

func TestClusterOp(t *testing.T) {
	c := newTestCluster(t, tcProgram, "", Options{Shards: 3, Placement: PlaceComponent})
	r := NewRouter(c)
	got := routerSession(t, r,
		`{"op":"insert","facts":["E(a,b)"]}`,
		`{"op":"cluster"}`,
	)
	cb := decodeResp(t, got[1]).Cluster
	if cb == nil {
		t.Fatalf("cluster op returned no body: %s", got[1])
	}
	if cb.Shards != 3 || cb.Placement != "component" || cb.Plan != string(CoordFree) ||
		cb.Fragment != string(datalog.FragDatalog) || cb.Log != 1 || cb.Affinity != -1 {
		t.Errorf("cluster body = %s", got[1])
	}
	if len(cb.Watermarks) != 3 {
		t.Fatalf("watermarks = %v", cb.Watermarks)
	}
	c.Quiesce()
	for j, wm := range c.Watermarks() {
		if wm != 1 {
			t.Errorf("shard %d watermark after quiesce = %d, want 1", j, wm)
		}
	}
}

func TestPlanSelection(t *testing.T) {
	cases := []struct {
		program     string
		place       PlacementKind
		partitioned bool
		coord       Coordination
	}{
		{tcProgram, PlaceHash, false, CoordFree},
		{tcProgram, PlaceComponent, true, CoordFree},
		{negProgram, PlaceHash, false, CoordFenced},
		{negProgram, PlaceComponent, false, CoordFenced},
		// Disconnected monotone rules: the cross product joins values
		// across components, so partitioning is demoted but reads stay
		// coordination-free (the program is still monotone).
		{"P(x,y) :- A(x), B(y).", PlaceComponent, false, CoordFree},
	}
	for i, tc := range cases {
		plan := PlanFor(datalog.MustParseProgram(tc.program), tc.place)
		if plan.Partitioned != tc.partitioned || plan.Coordination != tc.coord {
			t.Errorf("case %d: plan = %+v, want partitioned=%v coord=%s", i, plan, tc.partitioned, tc.coord)
		}
		if plan.Reason == "" {
			t.Errorf("case %d: empty reason", i)
		}
	}
}

// TestReadYourWrites hammers the own-write fence in both modes: on one
// connection every read issued after a write must observe it, even
// though the affinity shard is usually not the write's home and the
// pumps apply asynchronously. In component mode the chain workload
// also forces a component merge on every write — the fence must hold
// across migrations too.
func TestReadYourWrites(t *testing.T) {
	for _, place := range []PlacementKind{PlaceHash, PlaceComponent} {
		t.Run(string(place), func(t *testing.T) {
			c := newTestCluster(t, tcProgram, "", Options{Shards: 4, Placement: place})
			r := NewRouter(c)
			var lines []string
			for i := 0; i < 40; i++ {
				lines = append(lines,
					fmt.Sprintf(`{"op":"insert","facts":["E(ryw%d,ryw%d)"]}`, i, i+1),
					`{"op":"query","rel":"E"}`)
			}
			got := routerSession(t, r, lines...)
			for i := 0; i < 40; i++ {
				read := decodeResp(t, got[2*i+1])
				if !read.OK || read.Count == nil || *read.Count != i+1 {
					t.Fatalf("read after write %d saw %s, want count %d", i, got[2*i+1], i+1)
				}
			}
		})
	}
}

func TestCrashRestartBasics(t *testing.T) {
	c := newTestCluster(t, tcProgram, "E(a,b)\n", Options{Shards: 2, Reg: obs.NewRegistry()})
	r := NewRouter(c)
	routerSession(t, r, `{"op":"insert","facts":["E(b,c)"]}`)
	if err := c.Crash(0); err != nil {
		t.Fatal(err)
	}
	if err := c.Crash(0); err == nil {
		t.Error("double crash should error")
	}
	// Reads route around the down shard. The write still logs; its ack
	// may be lost if shard 0 was its home (at-least-once), so only the
	// read responses are asserted.
	got := routerSession(t, r,
		`{"op":"query","rel":"T"}`,
		`{"op":"insert","facts":["E(c,d)"]}`,
		`{"op":"query","rel":"E"}`,
	)
	if q := decodeResp(t, got[0]); !q.OK || *q.Count != 3 {
		t.Fatalf("read with shard 0 down: %s", got[0])
	}
	if q := decodeResp(t, got[2]); !q.OK || *q.Count != 3 {
		t.Fatalf("read after write with shard 0 down: %s", got[2])
	}
	if err := c.Restart(0); err != nil {
		t.Fatal(err)
	}
	if err := c.Restart(0); err == nil {
		t.Error("double restart should error")
	}
	c.Quiesce()
	// The recovered shard replayed the full log: both shards hold the
	// identical fact set.
	e0 := fact.FactStrings(c.ShardCore(0).CurrentEpoch().Facts())
	e1 := fact.FactStrings(c.ShardCore(1).CurrentEpoch().Facts())
	if strings.Join(e0, ";") != strings.Join(e1, ";") {
		t.Fatalf("shards diverge after recovery:\ns0: %v\ns1: %v", e0, e1)
	}
	if len(e0) != 9 { // chain a→b→c→d: 3 base edges + 6 closure facts
		t.Errorf("recovered state has %d facts, want 9: %v", len(e0), e0)
	}
	if c.crashes.Value() != 1 || c.recoveries.Value() != 1 {
		t.Errorf("crash/recovery counters = %d/%d, want 1/1", c.crashes.Value(), c.recoveries.Value())
	}
}

func TestSinkRejected(t *testing.T) {
	prog := datalog.MustParseProgram(tcProgram)
	opts := Options{Incr: incr.Options{Sink: obs.NewSink(io.Discard)}}
	if _, err := New(prog, nil, opts); err == nil || !strings.Contains(err.Error(), "Sink") {
		t.Fatalf("New with event sink = %v, want sink rejection", err)
	}
}

package cluster

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/fact"
)

// randomGraph builds a random E-instance over n values named
// <prefix>0..<prefix>(n-1) with m random edges — the same generator
// shape the fact package's component tests use.
func randomGraph(rng *rand.Rand, n, m int, prefix string) *fact.Instance {
	i := fact.NewInstance()
	vals := make([]fact.Value, n)
	for k := range vals {
		vals[k] = fact.Value(fmt.Sprintf("%s%d", prefix, k))
	}
	for k := 0; k < m; k++ {
		i.Add(fact.New("E", vals[rng.Intn(n)], vals[rng.Intn(n)]))
	}
	return i
}

// TestHashShardStable pins hash placement as a seed-free pure
// function: the same key always lands on the same shard, in this
// process and every other one (golden values), and the assignment is
// not degenerate.
func TestHashShardStable(t *testing.T) {
	used := make(map[int]bool)
	for i := 0; i < 256; i++ {
		key := fmt.Sprintf("E(k%d,k%d)", i, i+1)
		s := hashShard(key, 4)
		if s < 0 || s >= 4 {
			t.Fatalf("hashShard(%q, 4) = %d out of range", key, s)
		}
		if s != hashShard(key, 4) {
			t.Fatalf("hashShard(%q, 4) unstable", key)
		}
		used[s] = true
	}
	if len(used) != 4 {
		t.Errorf("256 keys over 4 shards used only %d shards", len(used))
	}
	// Golden pins: FNV-64a of these exact bytes. If these move, every
	// deployed placement moves — that is a wire-format break.
	for _, g := range []struct {
		key    string
		shards int
		want   int
	}{
		{"", 4, 1},
		{"E(a,b)", 4, 0},
		{"a", 4, 0},
	} {
		if got := hashShard(g.key, g.shards); got != g.want {
			t.Errorf("hashShard(%q, %d) = %d, want %d", g.key, g.shards, got, g.want)
		}
	}
	f := fact.MustParseFact("E(a,b)")
	if HashPlace(f, 4) != hashShard(f.Key(), 4) {
		t.Error("HashPlace must hash the fact's canonical key")
	}
}

// TestPlaceInstanceAgreesWithComponents checks the defining property
// of component placement on random graphs: facts in the same co(I)
// component share a shard, every fact is placed, and the shard is the
// hash of the component's minimum active-domain value.
func TestPlaceInstanceAgreesWithComponents(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		for trial := 0; trial < 50; trial++ {
			inst := randomGraph(rng, 6, 5, "v")
			shards := 2 + rng.Intn(3)
			placed := PlaceInstance(inst, shards)
			if len(placed) != inst.Len() {
				t.Fatalf("seed %d trial %d: placed %d of %d facts", seed, trial, len(placed), inst.Len())
			}
			for _, comp := range fact.Components(inst) {
				min := comp.ADom().Sorted()[0]
				want := hashShard(string(min), shards)
				comp.Each(func(f fact.Fact) bool {
					if placed[f.Key()] != want {
						t.Fatalf("seed %d trial %d: %v placed on %d, component min %s hashes to %d",
							seed, trial, f, placed[f.Key()], min, want)
					}
					return true
				})
			}
		}
	}
}

// TestPlacementUnionProperty pins the Theorem 5.3 shape: for domain
// disjoint instances I and J, placing I ⊎ J restricted to I equals
// placing I alone. Placement is per-component and a component never
// spans disjoint domains, so adding J cannot move any fact of I —
// which is why partitioned shards can answer connected monotone
// queries independently.
func TestPlacementUnionProperty(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		for trial := 0; trial < 50; trial++ {
			left := randomGraph(rng, 5, 4, "l")
			right := randomGraph(rng, 5, 4, "r")
			both := fact.NewInstance()
			left.Each(func(f fact.Fact) bool { both.Add(f); return true })
			right.Each(func(f fact.Fact) bool { both.Add(f); return true })

			shards := 2 + rng.Intn(3)
			pl, pb := PlaceInstance(left, shards), PlaceInstance(both, shards)
			left.Each(func(f fact.Fact) bool {
				if pl[f.Key()] != pb[f.Key()] {
					t.Fatalf("seed %d trial %d: %v moved from %d to %d when disjoint J was added",
						seed, trial, f, pl[f.Key()], pb[f.Key()])
				}
				return true
			})
		}
	}
}

// TestDynamicIndexAgreesWithStatic feeds the same instance to the
// incremental componentIndex in a random order and checks it ends at
// the static PlaceInstance assignment: observation order must not
// matter, or replicas of the router state would diverge.
func TestDynamicIndexAgreesWithStatic(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		for trial := 0; trial < 50; trial++ {
			inst := randomGraph(rng, 7, 8, "d")
			shards := 2 + rng.Intn(3)
			var facts []fact.Fact
			inst.Each(func(f fact.Fact) bool { facts = append(facts, f); return true })
			rng.Shuffle(len(facts), func(i, j int) { facts[i], facts[j] = facts[j], facts[i] })

			ci := newComponentIndex(shards)
			for _, f := range facts {
				ci.observe(f)
			}
			static := PlaceInstance(inst, shards)
			for _, f := range facts {
				if got := ci.shardOf(f.Arg(0)); got != static[f.Key()] {
					t.Fatalf("seed %d trial %d: dynamic shard %d != static %d for %v",
						seed, trial, got, static[f.Key()], f)
				}
			}
		}
	}
}

// TestUnionKeepsMin pins the migration invariant: union survives the
// root whose class holds the overall minimum, so the survivor's home
// shard (hash of its min) never changes when it absorbs a component.
func TestUnionKeepsMin(t *testing.T) {
	ci := newComponentIndex(2)
	ci.observe(fact.New("E", "b", "c"))
	ci.observe(fact.New("E", "x", "y"))
	root, absorbed, merged := ci.union("c", "x")
	if !merged {
		t.Fatal("distinct components must merge")
	}
	if ci.min[root] != "b" {
		t.Errorf("surviving min = %s, want b", ci.min[root])
	}
	if absorbed != "x" || ci.min[absorbed] != "x" {
		t.Errorf("absorbed root %s keeps its pre-merge min %s for migration lookup", absorbed, ci.min[absorbed])
	}
	if _, _, again := ci.union("b", "y"); again {
		t.Error("union of an already-merged pair must report merged=false")
	}
}

func TestParsePlacement(t *testing.T) {
	for _, s := range []string{"hash", "component"} {
		k, err := ParsePlacement(s)
		if err != nil || string(k) != s {
			t.Errorf("ParsePlacement(%q) = %v, %v", s, k, err)
		}
	}
	if _, err := ParsePlacement("roundrobin"); err == nil {
		t.Error("unknown placement must be rejected")
	}
}

package cluster

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/datalog"
	"repro/internal/fact"
	"repro/internal/incr"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/transducer"
)

// routerNode is the fault-plan identity of the router: the "sender"
// of every delta delivery on the simulated shard network.
const routerNode = transducer.NodeID("router")

// Options configures a Cluster. The zero value runs 2 shards with
// hash placement and no faults.
type Options struct {
	// Shards is the shard count (default 2, minimum 1).
	Shards int
	// Placement selects the placement strategy (default PlaceHash).
	Placement PlacementKind
	// Incr configures each shard's materialization. Incr.Sink must be
	// nil: per-shard event streams would interleave nondeterministically
	// through one sink, and the repo's event contract is deterministic.
	Incr incr.Options
	// Serve configures each shard's serving core.
	Serve serve.Options
	// Reg, when non-nil, receives the cluster.* metrics.
	Reg *obs.Registry
	// Tracer, when non-nil, records request-scoped spans across the
	// routing stack: log appends, scatter/gather phases, pump
	// deliveries (detached traces with Conn = -(1+shard)), and the
	// coord.* coordination events. Cluster span streams are NOT
	// byte-deterministic — pumps interleave freely (DESIGN.md §13).
	Tracer *obs.Tracer
	// Faults, when non-nil, injects duplication/delay/partition faults
	// into the delta stream, exactly as transducer fault plans inject
	// them into simulated networks: every decision is a pure function
	// of (seed, log position, shard), so faulty runs replay
	// deterministically. Faults act on replica deliveries only — the
	// delivery a client is waiting on applies locally — and crash
	// events are driven by the caller through Crash/Restart. Delays
	// reorder insert-only deliveries only (reordering is sound exactly
	// for monotone delta streams); a retract-bearing delivery releases
	// every hold on its shard before applying.
	Faults *transducer.FaultPlan
}

func (o Options) shards() int {
	if o.Shards > 0 {
		return o.Shards
	}
	return 2
}

func (o Options) placement() PlacementKind {
	if o.Placement == "" {
		return PlaceHash
	}
	return o.Placement
}

// record is one global delta-log entry: a client write split into
// per-shard sub-requests. subs[j].Op == "" means shard j has nothing
// to apply at this position — its pump still observes the entry so
// the watermark advances uniformly. key is the fault-decision key
// (the write's first fact); writes with no facts take no faults.
type record struct {
	g      int
	subs   []serve.Request
	key    fact.Fact
	hasKey bool
	enq    time.Time // append wall time; zero when metrics are disabled
}

// delivery is one inbox item for one shard: a log record to apply, or
// a flush control message releasing every held delta (quiescence).
// resp, when non-nil, receives the shard's apply response — the ack
// the submitting client is waiting on.
type delivery struct {
	rec   *record
	resp  chan serve.Response
	flush bool
}

// heldDelivery is a fault-delayed delivery waiting for the clock (the
// global log position) to reach release.
type heldDelivery struct {
	d       delivery
	release int
}

// shard is one cluster member: a serving core fed by a pump goroutine
// draining an unbounded FIFO inbox. Pumps never coordinate with each
// other — a slow shard lags behind the log tip; its watermark says by
// how much.
type shard struct {
	id   int
	c    *Cluster
	node transducer.NodeID

	// core is swapped on restart; readers load it after a watermark
	// fence, pumps use it exclusively between restart and crash.
	core atomic.Pointer[serve.Core]

	qmu      sync.Mutex
	qcond    *sync.Cond
	q        []delivery
	stop     bool
	pumpDone chan struct{}

	// heldN mirrors the pump-local held-delivery count for /healthz
	// and the cluster op — the pump owns the list, everyone else just
	// reads this.
	heldN atomic.Int64

	wmMu   sync.Mutex
	wmCond *sync.Cond
	wm     int // highest g with every delivery ≤ g applied
	down   bool
}

// compState is the partition-mode bookkeeping for one co(I)
// component: its base facts, all resident on the shard given by the
// hash of the component's minimum value.
type compState struct {
	facts map[string]fact.Fact
}

// Cluster is N in-process shards behind one global delta log. All
// client traffic flows through SubmitWrite/Read (the Router wraps
// them in the NDJSON protocol); per-shard serving cores may also be
// exposed directly for placement-aware clients.
type Cluster struct {
	prog   *datalog.Program
	plan   Plan
	place  PlacementKind
	opts   Options
	idb    fact.Schema
	schema fact.Schema
	shards []*shard
	// share[j] is shard j's slice of the initial instance — replayed
	// on restart before the log.
	share  []*fact.Instance
	faults *transducer.FaultPlan

	mu     sync.Mutex
	log    []*record
	ci     *componentIndex
	comp   map[fact.Value]*compState
	closed bool

	reg    *obs.Registry
	tracer *obs.Tracer

	writes, reads, errors  *obs.Counter
	deliveries, migrations *obs.Counter
	fenceWaits, gathers    *obs.Counter
	crashes, recoveries    *obs.Counter

	// Coordination budget (coord.*) — see internal/obs names.go.
	coordFences     *obs.Counter
	holdFlushes     *obs.Counter
	holdsReleased   *obs.Counter
	coordMigrations *obs.Counter
	fencedReads     *obs.Counter

	// Latency planes: gather phases, log append, delivery lag.
	gatherNs       *obs.LatencyHist
	fanoutNs       *obs.LatencyHist
	mergeNs        *obs.LatencyHist
	gatherRenderNs *obs.LatencyHist
	logAppendNs    *obs.LatencyHist
	deliveryLagNs  *obs.LatencyHist
	coordFenceNs   *obs.LatencyHist
}

// New builds a cluster of opts.Shards shards over the program and
// initial base instance. In partitioned mode the initial instance is
// split by co(I) component; otherwise every shard materializes the
// full instance.
func New(p *datalog.Program, initial *fact.Instance, opts Options) (*Cluster, error) {
	if opts.Incr.Sink != nil {
		return nil, fmt.Errorf("cluster: Incr.Sink must be nil (per-shard event streams interleave nondeterministically)")
	}
	n := opts.shards()
	place := opts.placement()
	schema, err := p.Schema()
	if err != nil {
		return nil, fmt.Errorf("cluster: %v", err)
	}
	c := &Cluster{
		prog:   p,
		plan:   PlanFor(p, place),
		place:  place,
		opts:   opts,
		idb:    p.IDB(),
		schema: schema,
		faults: opts.Faults,
		ci:     newComponentIndex(n),
		comp:   make(map[fact.Value]*compState),

		reg:    opts.Reg,
		tracer: opts.Tracer,

		writes:     opts.Reg.Counter(obs.ClusterWrites),
		reads:      opts.Reg.Counter(obs.ClusterReads),
		errors:     opts.Reg.Counter(obs.ClusterErrors),
		deliveries: opts.Reg.Counter(obs.ClusterDeliveries),
		migrations: opts.Reg.Counter(obs.ClusterMigrations),
		fenceWaits: opts.Reg.Counter(obs.ClusterFenceWaits),
		gathers:    opts.Reg.Counter(obs.ClusterGathers),
		crashes:    opts.Reg.Counter(obs.ClusterCrashes),
		recoveries: opts.Reg.Counter(obs.ClusterRecoveries),

		coordFences:     opts.Reg.Counter(obs.CoordFenceWaits),
		holdFlushes:     opts.Reg.Counter(obs.CoordHoldFlushes),
		holdsReleased:   opts.Reg.Counter(obs.CoordHoldsReleased),
		coordMigrations: opts.Reg.Counter(obs.CoordMigrations),
		fencedReads:     opts.Reg.Counter(obs.CoordFencedReads),

		gatherNs:       opts.Reg.Latency(obs.ClusterGatherNs),
		fanoutNs:       opts.Reg.Latency(obs.ClusterGatherFanoutNs),
		mergeNs:        opts.Reg.Latency(obs.ClusterGatherMergeNs),
		gatherRenderNs: opts.Reg.Latency(obs.ClusterGatherRenderNs),
		logAppendNs:    opts.Reg.Latency(obs.ClusterLogAppendNs),
		deliveryLagNs:  opts.Reg.Latency(obs.ClusterDeliveryLagNs),
		coordFenceNs:   opts.Reg.Latency(obs.CoordFenceWaitNs),
	}
	c.share = c.splitInitial(initial, n)
	for j := 0; j < n; j++ {
		m, err := incr.New(p, c.share[j], opts.Incr)
		if err != nil {
			for _, sh := range c.shards {
				sh.core.Load().Close()
			}
			return nil, fmt.Errorf("cluster: shard %d: %v", j, err)
		}
		sh := &shard{
			id:       j,
			c:        c,
			node:     transducer.NodeID(fmt.Sprintf("s%d", j)),
			pumpDone: make(chan struct{}),
		}
		sh.qcond = sync.NewCond(&sh.qmu)
		sh.wmCond = sync.NewCond(&sh.wmMu)
		sh.core.Store(serve.NewCore(m, opts.Serve))
		c.shards = append(c.shards, sh)
	}
	for _, sh := range c.shards {
		go sh.pump()
	}
	return c, nil
}

// splitInitial computes each shard's share of the initial instance.
// Partitioned mode seeds the component index with the whole instance
// first (so initial placement equals the static PlaceInstance answer)
// and routes each fact by its final component; replicated mode gives
// every shard the full instance.
func (c *Cluster) splitInitial(initial *fact.Instance, n int) []*fact.Instance {
	share := make([]*fact.Instance, n)
	if !c.plan.Partitioned {
		for j := range share {
			share[j] = initial
		}
		return share
	}
	for j := range share {
		share[j] = fact.NewInstance()
	}
	if initial == nil {
		return share
	}
	initial.Each(func(f fact.Fact) bool {
		if f.Arity() > 0 {
			c.ci.observe(f)
		}
		return true
	})
	initial.Each(func(f fact.Fact) bool {
		var home int
		if f.Arity() == 0 {
			home = hashShard(f.Key(), n)
		} else {
			root := c.ci.find(f.Arg(0))
			st := c.comp[root]
			if st == nil {
				st = &compState{facts: make(map[string]fact.Fact)}
				c.comp[root] = st
			}
			st.facts[f.Key()] = f
			home = c.ci.shardOf(root)
		}
		share[home].Add(f)
		return true
	})
	return share
}

// Plan returns the coordination plan the fragment classifier chose.
func (c *Cluster) Plan() Plan { return c.plan }

// Placement returns the configured placement strategy.
func (c *Cluster) Placement() PlacementKind { return c.place }

// ShardCount returns the number of shards.
func (c *Cluster) ShardCount() int { return len(c.shards) }

// ShardCore returns shard j's serving core, for callers that expose
// per-shard endpoints (placement-aware smart clients). The pointer is
// the current incarnation; after a Crash/Restart cycle it is stale.
func (c *Cluster) ShardCore(j int) *serve.Core { return c.shards[j].core.Load() }

// LogLen returns the global delta-log length — the fence a
// coordinated read waits for.
func (c *Cluster) LogLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.log)
}

// Watermarks returns each shard's applied log prefix.
func (c *Cluster) Watermarks() []int {
	wms := make([]int, len(c.shards))
	for j, sh := range c.shards {
		wms[j] = sh.watermark()
	}
	return wms
}

// ShardHealth is one shard's live progress: the payload of /healthz
// and of the NDJSON cluster op's applied/held/lag fields.
type ShardHealth struct {
	Shard int `json:"shard"`
	// Down reports a crashed, not-yet-restarted shard.
	Down bool `json:"down,omitempty"`
	// Watermark is the global log prefix the shard has applied; Lag is
	// the log tip minus that watermark (entries still in flight).
	Watermark int `json:"watermark"`
	Lag       int `json:"lag"`
	// Held counts fault-held deliveries parked on the shard.
	Held int `json:"held"`
	// Applied is the shard serving core's published epoch sequence.
	Applied int `json:"applied"`
}

// Health reports the log length and every shard's live progress.
func (c *Cluster) Health() (log int, shards []ShardHealth) {
	log = c.LogLen()
	shards = make([]ShardHealth, len(c.shards))
	for j, sh := range c.shards {
		h := ShardHealth{
			Shard:     j,
			Down:      sh.isDown(),
			Watermark: sh.watermark(),
			Held:      int(sh.heldN.Load()),
			Applied:   sh.core.Load().Seq(),
		}
		h.Lag = log - h.Watermark
		shards[j] = h
	}
	return log, shards
}

// PublishHealth refreshes the per-shard labeled gauge families
// (cluster_pump_lag{shard="j"}, cluster_held_deliveries{shard="j"})
// from live state. The admin server calls it as its BeforeScrape
// hook, so /metrics always carries current watermark lag without the
// pumps updating gauges on their hot path.
func (c *Cluster) PublishHealth() {
	if c.reg == nil {
		return
	}
	_, shards := c.Health()
	for _, h := range shards {
		s := strconv.Itoa(h.Shard)
		c.reg.Gauge(obs.WithLabel(obs.ClusterPumpLag, "shard", s)).Set(int64(h.Lag))
		c.reg.Gauge(obs.WithLabel(obs.ClusterHeldDeliveries, "shard", s)).Set(int64(h.Held))
	}
}

// Close shuts every shard down. Outstanding writes racing the close
// are answered with an error.
func (c *Cluster) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	for _, sh := range c.shards {
		if !sh.isDown() {
			sh.crash()
		}
	}
}

// --- write path ---------------------------------------------------

// SubmitWrite validates one mutating request, appends it to the
// global delta log, streams it to the shard pumps, and waits for the
// home shard acks. It returns the aggregated response and the log
// position (0 when the write was rejected before logging).
//
// Response semantics differ by mode, deliberately: replicated mode
// returns the home shard's response verbatim, so seq numbers are
// shard sequence numbers — identical on every shard and equal to the
// single-node oracle's (the determinism battery byte-compares them).
// Partitioned mode aggregates sub-responses and reports seq as the
// global log position, the only total order that exists there; apply
// stats include migration traffic when a write bridges components.
func (c *Cluster) SubmitWrite(req serve.Request) (serve.Response, int) {
	return c.SubmitWriteCtx(req, obs.SpanCtx{})
}

// SubmitWriteCtx is SubmitWrite with a trace context: the log append
// is recorded as a cluster.log_append span and component migrations
// as coord.migration spans under tc.
func (c *Cluster) SubmitWriteCtx(req serve.Request, tc obs.SpanCtx) (serve.Response, int) {
	c.writes.Inc()
	if req.Op == "snapshot" {
		c.errors.Inc()
		return serve.ErrResp("snapshot is a per-shard operation; connect to a shard endpoint directly"), 0
	}
	if !serve.IsWrite(req.Op) {
		c.errors.Inc()
		return serve.ErrResp("unknown op %q", req.Op), 0
	}
	ins, ret, err := c.parseDelta(req)
	if err != nil {
		c.errors.Inc()
		return serve.ErrResp("%v", err), 0
	}

	ls := tc.Start(obs.SpanLogAppend)
	var lstart time.Time
	if c.reg != nil {
		lstart = time.Now()
	}
	n := len(c.shards)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		c.errors.Inc()
		ls.Finish()
		return serve.ErrResp("cluster is closed"), 0
	}
	g := len(c.log) + 1
	rec := &record{g: g}
	if c.reg != nil {
		rec.enq = lstart
	}
	if len(ins) > 0 {
		rec.key, rec.hasKey = ins[0], true
	} else if len(ret) > 0 {
		rec.key, rec.hasKey = ret[0], true
	}
	var homes []int
	var migrated int
	if c.plan.Partitioned {
		rec.subs, migrated = c.placeDelta(ins, ret)
		for j, s := range rec.subs {
			if s.Op != "" {
				homes = append(homes, j)
			}
		}
		if len(homes) == 0 {
			// Empty delta: one shard still acks, so the client gets a
			// well-formed apply response.
			rec.subs[0] = serve.Request{Op: "apply"}
			homes = []int{0}
		}
	} else {
		rec.subs = make([]serve.Request, n)
		for j := range rec.subs {
			rec.subs[j] = req
		}
		h := 0
		if rec.hasKey {
			h = HashPlace(rec.key, n)
		}
		homes = []int{h}
	}
	c.log = append(c.log, rec)
	isHome := make(map[int]bool, len(homes))
	for _, j := range homes {
		isHome[j] = true
	}
	acks := make([]chan serve.Response, 0, len(homes))
	for j, sh := range c.shards {
		d := delivery{rec: rec}
		if isHome[j] {
			d.resp = make(chan serve.Response, 1)
			acks = append(acks, d.resp)
		}
		sh.enqueue(d)
	}
	c.mu.Unlock()
	ls.SetSeq(g).Finish()
	if !lstart.IsZero() {
		c.logAppendNs.Observe(time.Since(lstart).Nanoseconds())
	}
	if migrated > 0 {
		c.migrations.Add(int64(migrated))
		// A migration is coordination the placement layer performed on
		// the write's behalf: base facts moved shards inside this log
		// record so every derivation stays local.
		c.coordMigrations.Add(int64(migrated))
		ms := tc.Start(obs.SpanCoordMigration)
		ms.SetSeq(g).Attr("components", migrated)
		ms.Finish()
	}

	if !c.plan.Partitioned {
		resp := <-acks[0]
		if !resp.OK {
			c.errors.Inc()
		}
		return resp, g
	}
	agg := serve.Response{OK: true, Apply: &serve.ApplyBody{}}
	for _, ch := range acks {
		r := <-ch
		if !r.OK {
			c.errors.Inc()
			return serve.ErrResp("%s", r.Err), g
		}
		if r.Apply != nil {
			agg.Apply.Inserted += r.Apply.Inserted
			agg.Apply.Retracted += r.Apply.Retracted
			agg.Apply.Added += r.Apply.Added
			agg.Apply.Removed += r.Apply.Removed
		}
	}
	agg.Seq = &g
	return agg, g
}

// parseDelta decodes and validates a write's fact lists: known base
// relations only, schema arity, no NUL bytes, no fact on both sides.
func (c *Cluster) parseDelta(req serve.Request) (ins, ret []fact.Fact, err error) {
	var insStrs, retStrs []string
	switch req.Op {
	case "insert":
		insStrs = req.Facts
	case "retract":
		retStrs = req.Facts
	case "apply":
		insStrs, retStrs = req.Insert, req.Retract
	}
	if ins, err = fact.ParseFacts(insStrs); err != nil {
		return nil, nil, err
	}
	if ret, err = fact.ParseFacts(retStrs); err != nil {
		return nil, nil, err
	}
	seen := make(map[string]bool, len(ins))
	for _, f := range ins {
		if err := c.checkFact(f); err != nil {
			return nil, nil, err
		}
		seen[f.Key()] = true
	}
	for _, f := range ret {
		if err := c.checkFact(f); err != nil {
			return nil, nil, err
		}
		if seen[f.Key()] {
			return nil, nil, fmt.Errorf("cluster: %v appears in both insert and retract", f)
		}
	}
	return ins, ret, nil
}

// checkFact mirrors the materialization's base-fact validation so a
// bad write is rejected at the router, before it reaches the log.
func (c *Cluster) checkFact(f fact.Fact) error {
	if c.idb.Has(f.Rel()) {
		return fmt.Errorf("cluster: %v is over derived relation %s; deltas must change base relations only", f, f.Rel())
	}
	if ar, ok := c.schema.Arity(f.Rel()); ok && ar != f.Arity() {
		return fmt.Errorf("cluster: %v has arity %d, program uses %s with arity %d", f, f.Arity(), f.Rel(), ar)
	}
	for i := 0; i < f.Arity(); i++ {
		if strings.ContainsRune(string(f.Arg(i)), 0) {
			return fmt.Errorf("cluster: %v contains a NUL byte", f)
		}
	}
	return nil
}

// placeDelta routes a validated delta in partitioned mode: every fact
// goes to its component's home shard, and an insert that bridges
// components resident on different shards migrates the absorbed
// component to the survivor's home (synthetic retract+insert pairs in
// the same log record, so each base fact lives on exactly one shard
// at every log position). Called with c.mu held — placement decisions
// are serialized in log order. Retraction never re-splits a merged
// component: the index only coarsens, which is sound (colocating more
// than co(I) requires keeps every derivation local) if less sharp.
func (c *Cluster) placeDelta(ins, ret []fact.Fact) ([]serve.Request, int) {
	n := len(c.shards)
	type sub struct{ ins, ret []string }
	subs := make([]sub, n)
	migrated := 0

	for _, f := range ret {
		var target int
		if f.Arity() == 0 {
			target = hashShard(f.Key(), n)
		} else {
			root := c.ci.find(f.Arg(0))
			if st := c.comp[root]; st != nil {
				delete(st.facts, f.Key())
			}
			target = c.ci.shardOf(root)
		}
		subs[target].ret = append(subs[target].ret, f.String())
	}

	for _, f := range ins {
		if f.Arity() == 0 {
			subs[hashShard(f.Key(), n)].ins = append(subs[hashShard(f.Key(), n)].ins, f.String())
			continue
		}
		root := c.ci.find(f.Arg(0))
		c.ensureComp(root)
		for i := 1; i < f.Arity(); i++ {
			r2 := c.ci.find(f.Arg(i))
			if r2 == root {
				continue
			}
			c.ensureComp(r2)
			// The absorbed root's home is the hash of its (still
			// recorded) pre-merge minimum; the survivor's home is
			// unchanged because union keeps the overall minimum.
			win, lose, merged := c.ci.union(root, r2)
			if !merged {
				root = win
				continue
			}
			loseHome := hashShard(string(c.ci.min[lose]), n)
			winHome := c.ci.shardOf(win)
			lst := c.comp[lose]
			wst := c.comp[win]
			if loseHome != winHome && len(lst.facts) > 0 {
				moved := make([]fact.Fact, 0, len(lst.facts))
				for _, mf := range lst.facts {
					moved = append(moved, mf)
				}
				fact.SortFacts(moved)
				for _, mf := range moved {
					subs[loseHome].ret = append(subs[loseHome].ret, mf.String())
					subs[winHome].ins = append(subs[winHome].ins, mf.String())
				}
				migrated++
			}
			for k, mf := range lst.facts {
				wst.facts[k] = mf
			}
			delete(c.comp, lose)
			root = win
		}
		st := c.comp[root]
		st.facts[f.Key()] = f
		home := c.ci.shardOf(root)
		subs[home].ins = append(subs[home].ins, f.String())
	}

	out := make([]serve.Request, n)
	for j := range out {
		if len(subs[j].ins) == 0 && len(subs[j].ret) == 0 {
			continue
		}
		out[j] = serve.Request{Op: "apply", Insert: subs[j].ins, Retract: subs[j].ret}
	}
	return out, migrated
}

func (c *Cluster) ensureComp(root fact.Value) {
	if c.comp[root] == nil {
		c.comp[root] = &compState{facts: make(map[string]fact.Fact)}
	}
}

// --- read path ----------------------------------------------------

// Read answers one read request. fence is the log position the read
// must observe: the connection's last own write under a
// coordination-free plan, the log tip at arrival under a fenced plan.
// Replicated mode routes to the affinity shard (skipping down
// shards); partitioned mode scatters to every live shard and gathers
// the disjoint union.
func (c *Cluster) Read(affinity int, req serve.Request, fence int) serve.Response {
	return c.ReadCtx(affinity, req, fence, obs.SpanCtx{})
}

// ReadCtx is Read with a trace context: a partitioned read records
// cluster.gather with fanout/merge phase children; a replicated read
// traces through the affinity shard's core.
func (c *Cluster) ReadCtx(affinity int, req serve.Request, fence int, tc obs.SpanCtx) serve.Response {
	c.reads.Inc()
	if !serve.IsRead(req.Op) {
		c.errors.Inc()
		return serve.ErrResp("unknown op %q", req.Op)
	}
	if c.plan.Partitioned {
		return c.gather(req, fence, tc)
	}
	n := len(c.shards)
	for k := 0; k < n; k++ {
		sh := c.shards[(affinity+k)%n]
		if sh.waitWM(fence) {
			return sh.core.Load().DoCtx(req, tc)
		}
	}
	c.errors.Inc()
	return serve.ErrResp("cluster: every shard is down")
}

// gather is the partitioned read: pin one epoch per live shard behind
// the fence and merge. For connected monotone programs the shard
// answers are disjoint slices of Q(I) (Theorem 5.3), so the merge is
// a disjoint union; a down shard's slice is missing — the gathered
// answer is a subset of Q(I) that recovers with the shard, which is
// exactly the transducer model's crash semantics. Epoch echoes and
// stats seq report the minimum watermark across consulted shards:
// the longest log prefix the whole answer is guaranteed to reflect.
// The gather path is phase-instrumented (PERF.9 lives on it): fanout
// is epoch pinning across shards including any watermark fence waits;
// merge is the cross-shard k-way union; render (the wire encode) is
// measured by the router. Each phase is both a latency histogram and
// a child span of the gather span.
func (c *Cluster) gather(req serve.Request, fence int, tc obs.SpanCtx) serve.Response {
	c.gathers.Inc()
	if req.Op == "ping" {
		return serve.Response{OK: true}
	}
	if req.Op == "query" && req.Rel == "" {
		c.errors.Inc()
		return serve.ErrResp("query needs a rel")
	}
	gs := tc.Start(obs.SpanGather)
	var gstart time.Time
	if c.reg != nil {
		gstart = time.Now()
		defer func() { c.gatherNs.Observe(time.Since(gstart).Nanoseconds()) }()
	}
	defer gs.Finish()

	fsp := gs.Ctx().Start(obs.SpanGatherFanout)
	var eps []*incr.Epoch
	minWM := -1
	for _, sh := range c.shards {
		if !sh.waitWM(fence) {
			continue
		}
		core := sh.core.Load()
		wm := sh.watermark()
		eps = append(eps, core.CurrentEpoch())
		if minWM == -1 || wm < minWM {
			minWM = wm
		}
	}
	fsp.SetSeq(minWM).Attr("shards", len(eps)).Finish()
	if !gstart.IsZero() {
		c.fanoutNs.Observe(time.Since(gstart).Nanoseconds())
	}
	if len(eps) == 0 {
		c.errors.Inc()
		return serve.ErrResp("cluster: every shard is down")
	}
	gs.SetSeq(minWM)

	msp := gs.Ctx().Start(obs.SpanGatherMerge)
	var mstart time.Time
	if c.reg != nil {
		mstart = time.Now()
	}
	mergeDone := func(facts int) {
		msp.Attr("facts", facts).Finish()
		if !mstart.IsZero() {
			c.mergeNs.Observe(time.Since(mstart).Nanoseconds())
		}
	}

	switch req.Op {
	case "query", "facts":
		rel := req.Rel
		if req.Op == "facts" {
			rel = ""
		}
		lists := make([][]fact.Fact, len(eps))
		for i, ep := range eps {
			if rel == "" {
				lists[i] = ep.Facts()
			} else {
				lists[i] = ep.Rel(rel)
			}
		}
		fs := factStringsMerged(lists)
		mergeDone(len(fs))
		ncount := len(fs)
		resp := serve.Response{OK: true, Count: &ncount, Facts: fs}
		if req.Epoch {
			resp.Epoch = &minWM
		}
		return resp
	case "stats":
		st := &serve.StatsBody{Seq: minWM}
		for _, ep := range eps {
			st.Facts += ep.Len()
			st.Base += ep.BaseLen()
		}
		st.Derived = st.Facts - st.Base
		mergeDone(st.Facts)
		return serve.Response{OK: true, Stats: st}
	}
	mergeDone(0)
	c.errors.Inc()
	return serve.ErrResp("unknown op %q", req.Op)
}

// --- fault lifecycle ----------------------------------------------

// Crash stops shard j, discarding its in-memory state and every
// queued or held delivery (the log keeps them). Pending acks on the
// shard are answered with an error: the write is logged and will be
// recovered, but its ack is lost — at-least-once, like any crash
// between apply and reply.
func (c *Cluster) Crash(j int) error {
	if j < 0 || j >= len(c.shards) {
		return fmt.Errorf("cluster: no shard %d", j)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	sh := c.shards[j]
	if sh.isDown() {
		return fmt.Errorf("cluster: shard %d is already down", j)
	}
	sh.crash()
	c.crashes.Inc()
	return nil
}

// Restart rebuilds shard j from its initial share plus a full replay
// of the global delta log — the transducer model's crash-recovery
// rebroadcast — and rejoins it to the stream. The shard's watermark
// restarts at zero and climbs as the replay catches up; reads fence
// on it as usual, so a recovering shard serves only once it has
// reached the reader's fence.
func (c *Cluster) Restart(j int) error {
	if j < 0 || j >= len(c.shards) {
		return fmt.Errorf("cluster: no shard %d", j)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	sh := c.shards[j]
	if !sh.isDown() {
		return fmt.Errorf("cluster: shard %d is not down", j)
	}
	m, err := incr.New(c.prog, c.share[j], c.opts.Incr)
	if err != nil {
		return fmt.Errorf("cluster: restart shard %d: %v", j, err)
	}
	backlog := make([]delivery, len(c.log))
	for i, rec := range c.log {
		backlog[i] = delivery{rec: rec}
	}
	sh.restart(serve.NewCore(m, c.opts.Serve), backlog)
	c.recoveries.Inc()
	return nil
}

// Quiesce flushes every fault-held delivery and waits until every
// live shard's watermark reaches the current log tip: afterwards all
// live shards have applied the full log prefix, the state every
// fair run converges to.
func (c *Cluster) Quiesce() {
	c.mu.Lock()
	tip := len(c.log)
	for _, sh := range c.shards {
		sh.enqueue(delivery{flush: true})
	}
	c.mu.Unlock()
	for _, sh := range c.shards {
		sh.waitWM(tip)
	}
}

// --- shard machinery ----------------------------------------------

// enqueue appends one delivery to the shard inbox. A down shard
// answers any expected ack with an error instead; the record stays in
// the log for replay.
func (sh *shard) enqueue(d delivery) {
	sh.qmu.Lock()
	if sh.stop {
		sh.qmu.Unlock()
		if d.resp != nil {
			d.resp <- serve.ErrResp("cluster: shard %d is down", sh.id)
		}
		return
	}
	sh.q = append(sh.q, d)
	sh.qcond.Signal()
	sh.qmu.Unlock()
}

// next blocks for the next inbox delivery; false means the shard is
// stopping.
func (sh *shard) next() (delivery, bool) {
	sh.qmu.Lock()
	defer sh.qmu.Unlock()
	for len(sh.q) == 0 && !sh.stop {
		sh.qcond.Wait()
	}
	if sh.stop {
		return delivery{}, false
	}
	d := sh.q[0]
	sh.q = sh.q[1:]
	return d, true
}

// pump is the shard's delivery loop: apply log entries in arrival
// order, diverting through the fault plan when one is installed.
// Holds and duplicates follow the plan's pure per-message decisions
// with the global log position as the clock; held deliveries release
// when the clock passes their release tick, or all at once on a
// flush. held is pump-local: a crash drops it with the goroutine,
// and recovery replays from the log.
//
// Only insert-only deliveries may be held past later deliveries:
// reordering is sound exactly for monotone delta streams (applies
// commute and are idempotent, the CALM shape), while a delayed insert
// overtaken by a retraction of the same fact would resurrect it. A
// retract-bearing delivery is therefore a per-shard synchronization
// point — it releases every hold before applying, the delta-stream
// analogue of the coordination that non-monotonicity costs.
func (sh *shard) pump() {
	defer close(sh.pumpDone)
	var held []heldDelivery
	maxSeen := 0
	// The pump's deliveries form one detached trace: Conn = -(1+shard)
	// marks an actor with no client connection.
	ptc := sh.c.tracer.Root(obs.TraceID{Conn: -int64(1 + sh.id)})

	release := func(upTo int) int {
		kept := held[:0]
		n := 0
		for _, h := range held {
			if upTo >= 0 && h.release > upTo {
				kept = append(kept, h)
				continue
			}
			sh.apply(h.d, ptc)
			n++
		}
		held = kept
		sh.heldN.Store(int64(len(held)))
		return n
	}
	updateWM := func() {
		wm := maxSeen
		for _, h := range held {
			if h.d.rec.g-1 < wm {
				wm = h.d.rec.g - 1
			}
		}
		sh.setWM(wm)
	}

	for {
		d, ok := sh.next()
		if !ok {
			return
		}
		if d.flush {
			release(-1)
			updateWM()
			continue
		}
		g := d.rec.g
		release(g)
		sub := d.rec.subs[sh.id]
		mono := sub.Op != "retract" && len(sub.Retract) == 0
		if !mono && len(held) > 0 {
			// Retraction barrier: nothing may be reordered past it. This
			// flush is the delta-stream coordination a non-monotone write
			// costs — budgeted under coord.*.
			hs := ptc.Start(obs.SpanCoordHoldFlush)
			n := release(-1)
			hs.SetShard(sh.id).SetSeq(g).Attr("released", n)
			hs.Finish()
			sh.c.holdFlushes.Inc()
			sh.c.holdsReleased.Add(int64(n))
		} else if !mono {
			release(-1)
		}
		if p := sh.c.faults; p != nil && mono && d.resp == nil && d.rec.hasKey {
			if hold := p.HoldFor(g, routerNode, sh.node, d.rec.key); hold > 0 {
				held = append(held, heldDelivery{d: d, release: g + hold})
				sh.heldN.Store(int64(len(held)))
				maxSeen = g
				updateWM()
				continue
			}
			if p.ExtraCopies(g, routerNode, sh.node, d.rec.key) > 0 {
				sh.apply(delivery{rec: d.rec}, ptc) // duplicate copy; applies are idempotent
			}
		}
		sh.apply(d, ptc)
		maxSeen = g
		updateWM()
	}
}

// apply runs one delivery against the serving core and acks it. The
// delivery is recorded as a cluster.deliver span on the pump's trace,
// nesting the core's request phases, and its wall-clock lag from log
// append feeds cluster.delivery_lag_ns.
func (sh *shard) apply(d delivery, ptc obs.SpanCtx) {
	req := d.rec.subs[sh.id]
	var r serve.Response
	if req.Op == "" {
		r = serve.Response{OK: true}
	} else {
		ds := ptc.Start(obs.SpanDeliver)
		ds.SetShard(sh.id).SetSeq(d.rec.g)
		r = sh.core.Load().DoCtx(req, ds.Ctx())
		ds.Finish()
		sh.c.deliveries.Inc()
		if !d.rec.enq.IsZero() {
			sh.c.deliveryLagNs.Observe(time.Since(d.rec.enq).Nanoseconds())
		}
	}
	if d.resp != nil {
		d.resp <- r
	}
}

func (sh *shard) setWM(wm int) {
	sh.wmMu.Lock()
	if wm != sh.wm {
		sh.wm = wm
		sh.wmCond.Broadcast()
	}
	sh.wmMu.Unlock()
}

func (sh *shard) watermark() int {
	sh.wmMu.Lock()
	defer sh.wmMu.Unlock()
	return sh.wm
}

func (sh *shard) isDown() bool {
	sh.wmMu.Lock()
	defer sh.wmMu.Unlock()
	return sh.down
}

// waitWM blocks until the shard's watermark reaches g; false means
// the shard is down (the caller should route around it). A wait that
// actually blocks is coordination: it is counted under both the
// legacy cluster.fence_waits and the coord.* budget, with its
// duration in coord.fence_wait_ns.
func (sh *shard) waitWM(g int) bool {
	sh.wmMu.Lock()
	defer sh.wmMu.Unlock()
	if sh.down {
		return false
	}
	var start time.Time
	if sh.wm < g {
		sh.c.fenceWaits.Inc()
		sh.c.coordFences.Inc()
		if sh.c.reg != nil {
			start = time.Now()
		}
	}
	for sh.wm < g {
		if sh.down {
			return false
		}
		sh.wmCond.Wait()
	}
	if !start.IsZero() {
		sh.c.coordFenceNs.Observe(time.Since(start).Nanoseconds())
	}
	return true
}

// crash stops the pump, answers queued acks with errors, closes the
// core and marks the shard down. Callers hold c.mu.
func (sh *shard) crash() {
	sh.qmu.Lock()
	sh.stop = true
	q := sh.q
	sh.q = nil
	sh.qcond.Broadcast()
	sh.qmu.Unlock()
	<-sh.pumpDone
	for _, d := range q {
		if d.resp != nil {
			d.resp <- serve.ErrResp("cluster: shard %d is down", sh.id)
		}
	}
	sh.core.Load().Close()
	sh.wmMu.Lock()
	sh.down = true
	sh.wmCond.Broadcast()
	sh.wmMu.Unlock()
}

// restart installs a fresh core and replays the log backlog through a
// new pump. Callers hold c.mu, so the backlog snapshot and the inbox
// swap are atomic with respect to new appends.
func (sh *shard) restart(core *serve.Core, backlog []delivery) {
	sh.core.Store(core)
	sh.wmMu.Lock()
	sh.down = false
	sh.wm = 0
	sh.wmMu.Unlock()
	sh.qmu.Lock()
	sh.q = backlog
	sh.stop = false
	sh.qmu.Unlock()
	sh.pumpDone = make(chan struct{})
	go sh.pump()
}

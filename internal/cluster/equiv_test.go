package cluster

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/datalog"
	"repro/internal/fact"
	"repro/internal/incr"
	"repro/internal/obs"
	"repro/internal/serve"
)

// TestPartitionedEquivalence is the cross-shard equivalence battery
// for partitioned mode: a seeded driver submits random edge toggles
// over a small shared node pool — components merge and migrate
// constantly — through several router connections, mirroring every
// committed delta into a single-node oracle in submission order
// (writes are driven from one goroutine, so submission order IS
// global log order). At quiesced cuts the gathered reads must be
// byte-identical to the oracle's pure read function, and the shard
// slices must be disjoint: per Theorem 5.3 the answer of a connected
// monotone program on I is the disjoint union of its answers on the
// co(I) components, so fact counts must sum with no overlap.
func TestPartitionedEquivalence(t *testing.T) {
	for _, shards := range []int{2, 4} {
		for _, seed := range []int64{1, 2, 3} {
			shards, seed := shards, seed
			t.Run(fmt.Sprintf("shards=%d/seed=%d", shards, seed), func(t *testing.T) {
				runPartitionedEquivalence(t, shards, seed)
			})
		}
	}
}

func runPartitionedEquivalence(t *testing.T, shards int, seed int64) {
	const (
		conns  = 3
		rounds = 3
		writes = 30
		nodes  = 10
	)
	c := newTestCluster(t, tcProgram, "", Options{Shards: shards, Placement: PlaceComponent})
	if !c.Plan().Partitioned {
		t.Fatal("component placement over tc must partition")
	}
	r := NewRouter(c)
	cns := make([]*conn, conns)
	for i := range cns {
		cns[i] = r.newConn()
	}

	oracle, err := incr.New(datalog.MustParseProgram(tcProgram), fact.NewInstance(), incr.Options{})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(seed))
	present := make(map[[2]int]bool)
	for round := 0; round < rounds; round++ {
		for w := 0; w < writes; w++ {
			e := [2]int{rng.Intn(nodes), rng.Intn(nodes)}
			op := "insert"
			if present[e] {
				op = "retract"
			}
			present[e] = !present[e]
			f := fmt.Sprintf("E(p%d,p%d)", e[0], e[1])
			resp := cns[rng.Intn(conns)].handle(serve.Request{Op: op, Facts: []string{f}}, obs.SpanCtx{})
			if !resp.OK {
				t.Fatalf("round %d write %d (%s %s) failed: %s", round, w, op, f, resp.Err)
			}
			var d incr.Delta
			fs := []fact.Fact{fact.MustParseFact(f)}
			if op == "insert" {
				d.Insert = fs
			} else {
				d.Retract = fs
			}
			if _, err := oracle.Apply(d); err != nil {
				t.Fatalf("oracle apply: %v", err)
			}
		}
		c.Quiesce()
		compareCut(t, c, r, oracle, round)
	}
}

// compareCut byte-compares the gathered reads at a quiesced cut
// against the oracle and checks the Theorem 5.3 disjointness of the
// shard slices.
func compareCut(t *testing.T, c *Cluster, r *Router, oracle *incr.Materialization, round int) {
	t.Helper()
	ep := oracle.Epoch()
	cn := r.newConn()
	for _, req := range []serve.Request{
		{Op: "query", Rel: "T"},
		{Op: "query", Rel: "E"},
		{Op: "facts"},
	} {
		got, err := cn.handle(req, obs.SpanCtx{}).Encode()
		if err != nil {
			t.Fatal(err)
		}
		want, err := json.Marshal(serve.ReadResponse(ep, req))
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("round %d %s %s diverges from oracle:\ncluster: %s\noracle:  %s",
				round, req.Op, req.Rel, got, want)
		}
	}
	stats := cn.handle(serve.Request{Op: "stats"}, obs.SpanCtx{})
	if stats.Stats == nil || stats.Stats.Facts != ep.Len() || stats.Stats.Base != ep.BaseLen() ||
		stats.Stats.Derived != ep.Len()-ep.BaseLen() {
		t.Fatalf("round %d gathered stats %+v != oracle (facts %d, base %d)", round, stats.Stats, ep.Len(), ep.BaseLen())
	}
	if stats.Stats.Seq != c.LogLen() {
		t.Fatalf("round %d quiesced stats seq %d != log tip %d", round, stats.Stats.Seq, c.LogLen())
	}
	// Disjointness: per-shard sizes sum exactly to the oracle sizes.
	// Any double-homed base fact or cross-shard duplicate derivation
	// would make these sums exceed the oracle.
	sumBase, sumAll := 0, 0
	for j := 0; j < c.ShardCount(); j++ {
		sep := c.ShardCore(j).CurrentEpoch()
		sumBase += sep.BaseLen()
		sumAll += sep.Len()
	}
	if sumBase != ep.BaseLen() || sumAll != ep.Len() {
		t.Fatalf("round %d shard slices not disjoint: Σbase=%d (oracle %d), Σfacts=%d (oracle %d)",
			round, sumBase, ep.BaseLen(), sumAll, ep.Len())
	}
}

package cluster

import (
	"repro/internal/datalog"
)

// Coordination is the read-side coordination level a plan prescribes.
type Coordination string

const (
	// CoordFree: reads fence only on the connection's own writes (the
	// epoch vector). Sound exactly for the monotone fragment — an
	// early read of a monotone query is a subset of a late read, so
	// waiting buys nothing but latency (the CALM direction).
	CoordFree Coordination = "coordination-free"
	// CoordFenced: every read first waits for its shards to catch up
	// to the global log tip observed at arrival. Required once
	// stratified negation makes answers non-monotone: a stale prefix
	// can assert facts the full prefix retracts.
	CoordFenced Coordination = "fenced"
)

// Plan is the execution plan the fragment classifier selects: how
// deltas move between shards and how much coordination reads pay.
type Plan struct {
	// Fragment is the program's classified Datalog fragment.
	Fragment datalog.Fragment
	// Coordination is the read-side coordination level.
	Coordination Coordination
	// Partitioned reports the data layout: true means co(I) components
	// are partitioned across shards and reads scatter/gather
	// (Theorem 5.3); false means every shard replicates the full base
	// in global log order and reads route to one shard.
	Partitioned bool
	// Reason is a one-line human explanation of the choice.
	Reason string
}

// monotoneFragment reports whether the fragment is syntactically
// inside the paper's class M: positive programs (with or without
// inequalities) are monotone, Proposition 3.1. SP-Datalog sits in
// Mdistinct only — coordination-free just for domain-distinct deltas,
// a promise the general write stream cannot keep — so it is fenced
// here along with the rest of Datalog¬.
func monotoneFragment(f datalog.Fragment) bool {
	return f == datalog.FragDatalog || f == datalog.FragDatalogNeq
}

// PlanFor selects the weakest-coordination plan for the program under
// the requested placement. Component placement partitions only when
// it is sound: a monotone program whose rules are all connected keeps
// every derivation inside one co(I) component, so per-shard evaluation
// loses nothing (Lemma 3.2 / Theorem 5.3). Otherwise the plan falls
// back to replicated mode and says why.
func PlanFor(p *datalog.Program, place PlacementKind) Plan {
	frag := p.Classify()
	plan := Plan{Fragment: frag, Coordination: CoordFenced}
	if monotoneFragment(frag) {
		plan.Coordination = CoordFree
		plan.Reason = "monotone fragment " + string(frag) + ": reads fence only on own writes"
	} else {
		plan.Reason = "fragment " + string(frag) + " is not monotone: reads fence on the log tip"
	}
	if place == PlaceComponent {
		switch {
		case !monotoneFragment(frag):
			plan.Reason += "; component placement demoted to replication (negation needs the full base)"
		case !p.AllRulesConnected():
			plan.Reason += "; component placement demoted to replication (disconnected rules join across components)"
		default:
			plan.Partitioned = true
			plan.Reason += "; co(I) components partitioned, gathered reads are a disjoint union (Thm 5.3)"
		}
	}
	return plan
}

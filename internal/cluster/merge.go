package cluster

import "repro/internal/fact"

// mergeFactLists merges per-shard fact lists into one canonically
// sorted, duplicate-free slice. In partitioned mode the inputs are
// disjoint by construction (Theorem 5.3: shard answers are slices of
// a disjoint union), so deduplication is insurance, not load-bearing
// — but the fuzzer asserts it anyway, because a placement bug that
// double-homes a fact must surface as a test failure, not as a
// double-counted query answer.
func mergeFactLists(lists [][]fact.Fact) []fact.Fact {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	all := make([]fact.Fact, 0, total)
	for _, l := range lists {
		all = append(all, l...)
	}
	fact.SortFacts(all)
	out := all[:0]
	for i, f := range all {
		if i > 0 && f.Equal(all[i-1]) {
			continue
		}
		out = append(out, f)
	}
	return out
}

// factStringsMerged renders merged lists in wire form: the gathered
// response's facts array, byte-identical to what a single node
// holding the union would render (fact.FactStrings order).
func factStringsMerged(lists [][]fact.Fact) []string {
	merged := mergeFactLists(lists)
	out := make([]string, len(merged))
	for i, f := range merged {
		out[i] = f.String()
	}
	return out
}

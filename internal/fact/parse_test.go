package fact

import (
	"testing"
)

func TestParseFact(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"E(a,b)", "E(a,b)"},
		{"  E( a , b )  ", "E(a,b)"},
		{"Move(n1,n2)", "Move(n1,n2)"},
		{`R("hello world", x)`, `R("hello world",x)`},
		{`R("quo\"te")`, `R("quo\"te")`},
		{"T(a,b,c)", "T(a,b,c)"},
		{"lower(x)", "lower(x)"},
		{"R(v-1, v.2, v_3)", "R(v-1,v.2,v_3)"},
	}
	for _, c := range cases {
		f, err := ParseFact(c.in)
		if err != nil {
			t.Errorf("ParseFact(%q) error: %v", c.in, err)
			continue
		}
		if f.String() != c.want {
			t.Errorf("ParseFact(%q) = %q, want %q", c.in, f.String(), c.want)
		}
	}
}

func TestParseFactErrors(t *testing.T) {
	bad := []string{
		"",
		"E",
		"E(",
		"E()",
		"E(a",
		"E(a,)",
		"E(a) extra",
		"(a,b)",
		"E(a,,b)",
		`E("unterminated)`,
		"1E(a)",
	}
	for _, s := range bad {
		if _, err := ParseFact(s); err == nil {
			t.Errorf("ParseFact(%q) should fail", s)
		}
	}
}

func TestParseInstance(t *testing.T) {
	src := `
		# a small graph
		E(a,b)
		E(b,c), E(c,d)   % trailing comment
		E(a,b)           # duplicate folded by set semantics
	`
	i, err := ParseInstance(src)
	if err != nil {
		t.Fatalf("ParseInstance error: %v", err)
	}
	if i.Len() != 3 {
		t.Errorf("Len = %d, want 3: %v", i.Len(), i)
	}
}

func TestParseInstanceEmpty(t *testing.T) {
	i, err := ParseInstance("  \n # only a comment\n")
	if err != nil || !i.Empty() {
		t.Errorf("empty input: i=%v err=%v", i, err)
	}
}

func TestParseRoundTrip(t *testing.T) {
	orig := inst("E(a,b)", "E(b,c)", "R(x,y,z)", "S(w)")
	// String() wraps the fact list in braces; strip them before re-parsing.
	s := orig.String()
	parsed, err := ParseInstance(s[1 : len(s)-1])
	if err != nil {
		t.Fatalf("round-trip parse error: %v", err)
	}
	if !parsed.Equal(orig) {
		t.Errorf("round trip: got %v, want %v", parsed, orig)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseFact should panic on bad input")
		}
	}()
	MustParseFact("not a fact")
}

// Package fact implements the relational data model of the paper
// "Weaker Forms of Monotonicity for Declarative Networking" (PODS 2014):
// data values, facts, database schemas and database instances, together
// with the instance-level notions the paper builds on — active domains,
// domain-distinctness and domain-disjointness (Section 3.1), components
// (Section 5.1), induced subinstances and homomorphisms (Section 3.2),
// and value permutations (genericity, Section 2).
//
// Instances are finite sets of facts with set semantics. All iteration
// orders exposed by this package are deterministic (sorted), so that
// higher layers — the Datalog engine, the transducer network simulator,
// and the experiment harness — produce reproducible output.
package fact

import (
	"sort"
	"strings"
	"unicode"
)

// Value is an element of the data domain dom. The paper assumes an
// infinite domain of uninterpreted values; we represent them as strings
// and never interpret them beyond equality, which preserves genericity.
//
// Values must not contain the NUL byte (used internally as a separator
// in canonical fact keys); the parsers in this package and in the
// datalog package reject such values.
type Value string

// Tuple is an ordered sequence of domain values, the argument list of a fact.
type Tuple []Value

// Equal reports whether two tuples have the same length and components.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the tuple.
func (t Tuple) Clone() Tuple {
	if t == nil {
		return nil
	}
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// Compare orders tuples first by length, then lexicographically.
func (t Tuple) Compare(u Tuple) int {
	if len(t) != len(u) {
		if len(t) < len(u) {
			return -1
		}
		return 1
	}
	for i := range t {
		if t[i] != u[i] {
			if t[i] < u[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// String renders the tuple as a comma-separated list without
// parentheses; values that are not bare identifiers are quoted.
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = QuoteValue(v)
	}
	return strings.Join(parts, ",")
}

// QuoteValue renders a value in the textual syntax accepted by the
// parsers: bare when it consists solely of letters, digits, '_', '-'
// and '.', double-quoted with minimal escaping otherwise. The printed
// form always parses back to the same value (except for values
// containing a NUL byte, which the parsers reject).
func QuoteValue(v Value) string {
	if isBareValue(v) {
		return string(v)
	}
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(v); i++ {
		c := v[i]
		if c == '"' || c == '\\' {
			b.WriteByte('\\')
		}
		b.WriteByte(c)
	}
	b.WriteByte('"')
	return b.String()
}

// isBareValue reports whether the value prints safely without quotes,
// mirroring the bare-value charset of the parser.
func isBareValue(v Value) bool {
	if len(v) == 0 {
		return false
	}
	for _, r := range string(v) {
		if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_' && r != '-' && r != '.' {
			return false
		}
	}
	return true
}

// ValueSet is a finite set of domain values, such as an active domain.
type ValueSet map[Value]struct{}

// NewValueSet builds a set from the given values.
func NewValueSet(vs ...Value) ValueSet {
	s := make(ValueSet, len(vs))
	for _, v := range vs {
		s[v] = struct{}{}
	}
	return s
}

// Has reports membership of v in the set.
func (s ValueSet) Has(v Value) bool {
	_, ok := s[v]
	return ok
}

// Add inserts v into the set.
func (s ValueSet) Add(v Value) { s[v] = struct{}{} }

// AddAll inserts every value of t into the set.
func (s ValueSet) AddAll(t ValueSet) {
	for v := range t {
		s[v] = struct{}{}
	}
}

// Union returns a new set containing the values of both operands.
func (s ValueSet) Union(t ValueSet) ValueSet {
	u := make(ValueSet, len(s)+len(t))
	u.AddAll(s)
	u.AddAll(t)
	return u
}

// Intersect returns a new set with the values present in both operands.
func (s ValueSet) Intersect(t ValueSet) ValueSet {
	small, large := s, t
	if len(large) < len(small) {
		small, large = large, small
	}
	u := make(ValueSet)
	for v := range small {
		if large.Has(v) {
			u.Add(v)
		}
	}
	return u
}

// Minus returns a new set with the values of s that are not in t.
func (s ValueSet) Minus(t ValueSet) ValueSet {
	u := make(ValueSet)
	for v := range s {
		if !t.Has(v) {
			u.Add(v)
		}
	}
	return u
}

// Disjoint reports whether the two sets share no value.
func (s ValueSet) Disjoint(t ValueSet) bool {
	small, large := s, t
	if len(large) < len(small) {
		small, large = large, small
	}
	for v := range small {
		if large.Has(v) {
			return false
		}
	}
	return true
}

// Equal reports whether both sets contain exactly the same values.
func (s ValueSet) Equal(t ValueSet) bool {
	if len(s) != len(t) {
		return false
	}
	for v := range s {
		if !t.Has(v) {
			return false
		}
	}
	return true
}

// Sorted returns the values in lexicographic order.
func (s ValueSet) Sorted() []Value {
	vs := make([]Value, 0, len(s))
	for v := range s {
		vs = append(vs, v)
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	return vs
}

// Clone returns an independent copy of the set.
func (s ValueSet) Clone() ValueSet {
	c := make(ValueSet, len(s))
	c.AddAll(s)
	return c
}

package fact

import (
	"fmt"
	"strings"
	"unicode"
)

// This file implements a small textual format for facts and instances,
// used by the CLI tools, testdata files, and tests:
//
//	E(a,b)
//	E(b,c)   # comments run to end of line
//	Move(n1, n2)
//
// Relation names start with an upper- or lower-case letter and continue
// with letters, digits and underscores. Values are bare identifiers
// (letters, digits, '_', '-', '.') or double-quoted strings.

// ParseFact parses a single fact such as "E(a,b)".
func ParseFact(s string) (Fact, error) {
	p := &parser{input: s}
	f, err := p.fact()
	if err != nil {
		return Fact{}, err
	}
	p.skipSpace()
	if !p.eof() {
		return Fact{}, fmt.Errorf("fact %q: trailing input at offset %d", s, p.pos)
	}
	return f, nil
}

// ParseFacts parses a list of textual facts, failing on the first bad
// one. It is the batch entry point the serving protocol uses for
// request fact lists; a nil error guarantees one fact per input string.
func ParseFacts(strs []string) ([]Fact, error) {
	out := make([]Fact, 0, len(strs))
	for _, s := range strs {
		f, err := ParseFact(s)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

// MustParseFact is like ParseFact but panics on error; for tests and examples.
func MustParseFact(s string) Fact {
	f, err := ParseFact(s)
	if err != nil {
		panic(err)
	}
	return f
}

// ParseInstance parses a newline- or comma-separated list of facts,
// with '#' and '%' line comments, into an instance.
func ParseInstance(s string) (*Instance, error) {
	out := NewInstance()
	p := &parser{input: s}
	for {
		p.skipSeparators()
		if p.eof() {
			return out, nil
		}
		f, err := p.fact()
		if err != nil {
			return nil, err
		}
		out.Add(f)
	}
}

// MustParseInstance is like ParseInstance but panics on error.
func MustParseInstance(s string) *Instance {
	i, err := ParseInstance(s)
	if err != nil {
		panic(err)
	}
	return i
}

type parser struct {
	input string
	pos   int
}

func (p *parser) eof() bool { return p.pos >= len(p.input) }

func (p *parser) peek() byte { return p.input[p.pos] }

func (p *parser) skipSpace() {
	for !p.eof() {
		c := p.peek()
		if c == ' ' || c == '\t' {
			p.pos++
			continue
		}
		return
	}
}

// skipSeparators also consumes newlines, commas between facts, and comments.
func (p *parser) skipSeparators() {
	for !p.eof() {
		c := p.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == ',' || c == ';':
			p.pos++
		case c == '#' || c == '%':
			for !p.eof() && p.peek() != '\n' {
				p.pos++
			}
		default:
			return
		}
	}
}

func (p *parser) fact() (Fact, error) {
	p.skipSpace()
	rel, err := p.ident("relation name")
	if err != nil {
		return Fact{}, err
	}
	p.skipSpace()
	if p.eof() || p.peek() != '(' {
		return Fact{}, fmt.Errorf("fact: expected '(' after %q at offset %d", rel, p.pos)
	}
	p.pos++
	var args []Value
	for {
		p.skipSpace()
		v, err := p.value()
		if err != nil {
			return Fact{}, err
		}
		args = append(args, v)
		p.skipSpace()
		if p.eof() {
			return Fact{}, fmt.Errorf("fact: unterminated argument list for %q", rel)
		}
		switch p.peek() {
		case ',':
			p.pos++
		case ')':
			p.pos++
			return New(rel, args...), nil
		default:
			return Fact{}, fmt.Errorf("fact: unexpected character %q at offset %d", p.peek(), p.pos)
		}
	}
}

func (p *parser) ident(what string) (string, error) {
	start := p.pos
	for !p.eof() {
		c := rune(p.peek())
		if unicode.IsLetter(c) || c == '_' || (p.pos > start && unicode.IsDigit(c)) {
			p.pos++
			continue
		}
		break
	}
	if p.pos == start {
		return "", fmt.Errorf("parse: expected %s at offset %d", what, start)
	}
	return p.input[start:p.pos], nil
}

func (p *parser) value() (Value, error) {
	if p.eof() {
		return "", fmt.Errorf("parse: expected value at end of input")
	}
	if p.peek() == '"' {
		return p.quoted()
	}
	start := p.pos
	for !p.eof() {
		c := rune(p.peek())
		if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' || c == '-' || c == '.' {
			p.pos++
			continue
		}
		break
	}
	if p.pos == start {
		return "", fmt.Errorf("parse: expected value at offset %d", start)
	}
	return Value(p.input[start:p.pos]), nil
}

func (p *parser) quoted() (Value, error) {
	p.pos++ // opening quote
	var b strings.Builder
	for !p.eof() {
		c := p.peek()
		switch c {
		case '"':
			p.pos++
			return Value(b.String()), nil
		case '\\':
			p.pos++
			if p.eof() {
				return "", fmt.Errorf("parse: unterminated escape in quoted value")
			}
			b.WriteByte(p.peek())
			p.pos++
		case 0:
			return "", fmt.Errorf("parse: NUL byte not allowed in values")
		default:
			b.WriteByte(c)
			p.pos++
		}
	}
	return "", fmt.Errorf("parse: unterminated quoted value")
}

package fact

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
)

// This file implements the process-wide symbol table that interns
// every domain value and relation name into a dense uint32 ID. The
// engines join, deduplicate and index on IDs instead of strings: an
// equality is one integer compare, a hash is an integer hash, and a
// packed tuple of IDs is a canonical fact key that needs no string
// building (the Fact.Key() hot-path cost that BENCH_PR4 exposed).
//
// The table is append-only and shared by the whole process. Reads
// (ID -> string, string -> ID for already-interned values) are
// lock-free: the string -> ID direction is a sync.Map, and the
// ID -> string direction is a chunked spine published through an
// atomic pointer, so existing entries never move when the table
// grows. Writes take a mutex, but values are interned only when facts
// are first constructed from strings (parsing, generators); the
// fixpoint engines derive new facts from already-interned IDs and
// never touch the write path.
//
// IDs are assigned in interning order, which depends on the order the
// process first sees each string. Nothing observable may depend on ID
// order: every deterministic artifact (sorted instances, traces,
// snapshots) keeps ordering by string comparison (Fact.Compare).

// ID is an interned symbol: a dense handle for a domain value or a
// relation name. The zero ID is the empty string, so the zero Fact
// still reads as having an empty relation name.
type ID uint32

// NoID is the reserved sentinel meaning "no symbol" (used by the
// engines for unbound variable slots). Intern panics before handing
// it out.
const NoID = ^ID(0)

const (
	symChunkBits = 12
	symChunkSize = 1 << symChunkBits
	symChunkMask = symChunkSize - 1
)

type symChunk [symChunkSize]string

type symtab struct {
	ids   sync.Map // string -> ID
	spine atomic.Pointer[[]*symChunk]

	mu   sync.Mutex
	next ID
}

var symbols = newSymtab()

func newSymtab() *symtab {
	t := &symtab{}
	spine := make([]*symChunk, 1, 8)
	spine[0] = new(symChunk)
	t.spine.Store(&spine)
	t.intern("") // reserve ID 0 for the empty string
	return t
}

func (t *symtab) intern(s string) ID {
	if id, ok := t.ids.Load(s); ok {
		return id.(ID)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.ids.Load(s); ok {
		return id.(ID)
	}
	id := t.next
	if id == NoID {
		panic("fact: symbol table full")
	}
	spine := *t.spine.Load()
	ci := int(id >> symChunkBits)
	if ci == len(spine) {
		grown := make([]*symChunk, ci+1, cap(spine)*2+1)
		copy(grown, spine)
		grown[ci] = new(symChunk)
		t.spine.Store(&grown)
		spine = grown
	}
	// The slot is written before the ID is published in t.ids; a
	// reader holding the ID acquired it through that map (or through
	// data handed over a synchronizing barrier), so the write is
	// visible.
	spine[ci][id&symChunkMask] = s
	t.ids.Store(s, id)
	t.next++
	return id
}

func (t *symtab) lookup(id ID) string {
	spine := *t.spine.Load()
	return spine[id>>symChunkBits][id&symChunkMask]
}

// Intern returns the ID of the value, assigning a fresh one on first
// sight. Safe for concurrent use; lookups of known values are
// lock-free.
func Intern(v Value) ID { return symbols.intern(string(v)) }

// InternString is Intern for relation names and other raw strings.
func InternString(s string) ID { return symbols.intern(s) }

// Symbol returns the string an ID was assigned for. The ID must have
// been returned by Intern/InternString; lookups are lock-free.
func Symbol(id ID) Value { return Value(symbols.lookup(id)) }

// LookupValue returns the ID of an already-interned value without
// interning it; ok is false when the value has never been seen, in
// which case no existing fact can contain it. Probe paths (index
// lookups, binding seeds) use this so queries against absent values
// don't grow the symbol table.
func LookupValue(v Value) (ID, bool) {
	if id, ok := symbols.ids.Load(string(v)); ok {
		return id.(ID), true
	}
	return NoID, false
}

// AppendPackedIDs appends the 4-byte little-endian encoding of each
// ID to buf. A packed (relation, args...) sequence is the canonical
// binary key of a fact: distinct facts have distinct packed keys with
// no string building. Packed keys are stable within a process but not
// across processes (IDs depend on interning order), so they must
// never leak into persistent artifacts — those keep using the textual
// forms.
func AppendPackedIDs(buf []byte, ids ...ID) []byte {
	for _, id := range ids {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(id))
	}
	return buf
}

package fact

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func inst(facts ...string) *Instance {
	i := NewInstance()
	for _, s := range facts {
		i.Add(MustParseFact(s))
	}
	return i
}

func TestInstanceSetSemantics(t *testing.T) {
	i := NewInstance()
	if !i.Add(New("E", "a", "b")) {
		t.Error("first Add returned false")
	}
	if i.Add(New("E", "a", "b")) {
		t.Error("duplicate Add returned true")
	}
	if i.Len() != 1 {
		t.Errorf("Len = %d, want 1", i.Len())
	}
	if !i.Has(New("E", "a", "b")) {
		t.Error("Has missing inserted fact")
	}
	if !i.Remove(New("E", "a", "b")) {
		t.Error("Remove of present fact returned false")
	}
	if i.Remove(New("E", "a", "b")) {
		t.Error("Remove of absent fact returned true")
	}
	if !i.Empty() {
		t.Error("instance not empty after removal")
	}
}

func TestInstanceAlgebra(t *testing.T) {
	i := inst("E(a,b)", "E(b,c)")
	j := inst("E(b,c)", "E(c,d)")

	if got := i.Union(j); got.Len() != 3 {
		t.Errorf("Union size = %d, want 3", got.Len())
	}
	if got := i.Minus(j); got.Len() != 1 || !got.Has(New("E", "a", "b")) {
		t.Errorf("Minus = %v, want {E(a,b)}", got)
	}
	if got := i.Intersect(j); got.Len() != 1 || !got.Has(New("E", "b", "c")) {
		t.Errorf("Intersect = %v, want {E(b,c)}", got)
	}
	if i.SubsetOf(j) {
		t.Error("non-subset reported SubsetOf")
	}
	if !inst("E(a,b)").SubsetOf(i) {
		t.Error("subset not reported SubsetOf")
	}
	if !i.Equal(inst("E(b,c)", "E(a,b)")) {
		t.Error("order-insensitive Equal failed")
	}
}

func TestInstanceADomAndSchema(t *testing.T) {
	i := inst("E(a,b)", "R(b,c,d)")
	ad := i.ADom()
	if len(ad) != 4 {
		t.Errorf("ADom size = %d, want 4", len(ad))
	}
	s := i.Schema()
	if ar, _ := s.Arity("E"); ar != 2 {
		t.Errorf("E arity = %d, want 2", ar)
	}
	if ar, _ := s.Arity("R"); ar != 3 {
		t.Errorf("R arity = %d, want 3", ar)
	}
}

func TestInstanceRestrict(t *testing.T) {
	i := inst("E(a,b)", "R(b,c,d)", "S(x)")
	sigma := MustSchema(map[string]int{"E": 2, "S": 1})
	got := i.Restrict(sigma)
	if got.Len() != 2 || !got.Has(New("E", "a", "b")) || !got.Has(New("S", "x")) {
		t.Errorf("Restrict = %v", got)
	}
	// A relation with the right name but wrong arity is not covered.
	badArity := MustSchema(map[string]int{"E": 3})
	if got := i.Restrict(badArity); !got.Empty() {
		t.Errorf("Restrict with mismatched arity = %v, want empty", got)
	}
	if got := i.RestrictRel("R"); got.Len() != 1 {
		t.Errorf("RestrictRel(R) = %v", got)
	}
}

func TestInstanceCloneIndependent(t *testing.T) {
	i := inst("E(a,b)")
	c := i.Clone()
	c.Add(New("E", "x", "y"))
	if i.Len() != 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestInstanceFactsSorted(t *testing.T) {
	i := inst("E(b,c)", "E(a,b)", "A(z)")
	fs := i.Facts()
	want := []string{"A(z)", "E(a,b)", "E(b,c)"}
	for n, f := range fs {
		if f.String() != want[n] {
			t.Errorf("Facts()[%d] = %v, want %s", n, f, want[n])
		}
	}
	if i.String() != "{A(z), E(a,b), E(b,c)}" {
		t.Errorf("String() = %q", i.String())
	}
}

func TestInstanceMap(t *testing.T) {
	i := inst("E(a,b)", "E(b,c)")
	got := i.Map(Hom{"a": "b"})
	// E(a,b) -> E(b,b); E(b,c) -> E(b,c) since b unmapped stays b.
	if got.Len() != 2 || !got.Has(New("E", "b", "b")) || !got.Has(New("E", "b", "c")) {
		t.Errorf("Map = %v", got)
	}
	// Collapsing map can shrink the instance.
	collapsed := inst("E(a,b)", "E(c,d)").Map(Hom{"c": "a", "d": "b"})
	if collapsed.Len() != 1 {
		t.Errorf("collapsing Map size = %d, want 1", collapsed.Len())
	}
}

func TestDomainDistinctAndDisjoint(t *testing.T) {
	i := inst("E(a,b)")
	cases := []struct {
		j                  *Instance
		distinct, disjoint bool
	}{
		{inst("E(a,c)"), true, false},            // one new value -> distinct, not disjoint
		{inst("E(c,d)"), true, true},             // all new -> both
		{inst("E(a,b)"), false, false},           // no new values
		{inst("E(a,c)", "E(b,a)"), false, false}, // E(b,a) has no new value
		{inst("E(c,d)", "E(d,e)"), true, true},
		{NewInstance(), true, true}, // empty J is vacuously both
	}
	for n, c := range cases {
		if got := DomainDistinct(c.j, i); got != c.distinct {
			t.Errorf("case %d: DomainDistinct = %v, want %v", n, got, c.distinct)
		}
		if got := DomainDisjoint(c.j, i); got != c.disjoint {
			t.Errorf("case %d: DomainDisjoint = %v, want %v", n, got, c.disjoint)
		}
	}
}

func TestDomainDisjointImpliesDistinct(t *testing.T) {
	// Property from Section 3.1: every domain-disjoint J (with nonempty
	// facts, which is guaranteed by arity >= 1) is also domain-distinct.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		i := randomGraph(rng, 5, 6)
		j := randomGraphValues(rng, 5, 6, "n") // values n0..n4 distinct from v0..v4
		if DomainDisjoint(j, i) && !DomainDistinct(j, i) {
			t.Fatalf("J=%v disjoint from I=%v but not distinct", j, i)
		}
	}
}

func TestDomainDistinctDisjointFact(t *testing.T) {
	i := inst("E(a,b)")
	if !DomainDistinctFact(New("E", "a", "c"), i) {
		t.Error("E(a,c) should be domain distinct from {E(a,b)}")
	}
	if DomainDisjointFact(New("E", "a", "c"), i) {
		t.Error("E(a,c) should not be domain disjoint from {E(a,b)}")
	}
	if !DomainDisjointFact(New("E", "c", "d"), i) {
		t.Error("E(c,d) should be domain disjoint from {E(a,b)}")
	}
	if DomainDistinctFact(New("E", "b", "a"), i) {
		t.Error("E(b,a) should not be domain distinct from {E(a,b)}")
	}
}

func TestInducedSubinstance(t *testing.T) {
	i := inst("E(a,b)", "E(b,c)", "E(c,d)")
	got := InducedSubinstance(i, NewValueSet("a", "b", "c"))
	want := inst("E(a,b)", "E(b,c)")
	if !got.Equal(want) {
		t.Errorf("InducedSubinstance = %v, want %v", got, want)
	}
	if !IsInducedSubinstance(want, i) {
		t.Error("want should be an induced subinstance of i")
	}
	// {E(a,b), E(c,d)} is induced (contains all facts over {a,b,c,d}
	// except E(b,c) — but E(b,c) is over {b,c} ⊆ {a,b,c,d}), so NOT induced.
	if IsInducedSubinstance(inst("E(a,b)", "E(c,d)"), i) {
		t.Error("{E(a,b),E(c,d)} is not induced: E(b,c) over its adom is missing")
	}
}

// Lemma 3.2 building block: J is an induced subinstance of I iff
// I \ J is domain distinct from J.
func TestInducedIffComplementDomainDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		i := randomGraph(rng, 5, 7)
		// random sub-adom
		var c ValueSet = make(ValueSet)
		for v := range i.ADom() {
			if rng.Intn(2) == 0 {
				c.Add(v)
			}
		}
		j := InducedSubinstance(i, c)
		if !DomainDistinct(i.Minus(j), j) {
			t.Fatalf("I\\J not domain distinct from J for I=%v C=%v", i, c.Sorted())
		}
	}
}

func TestInstanceUnionProperties(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		a := randomGraph(rand.New(rand.NewSource(seedA)), 4, 5)
		b := randomGraph(rand.New(rand.NewSource(seedB)), 4, 5)
		u := a.Union(b)
		// Union is commutative, superset of both, and idempotent.
		return u.Equal(b.Union(a)) &&
			a.SubsetOf(u) && b.SubsetOf(u) &&
			u.Union(u).Equal(u) &&
			a.Minus(b).Union(a.Intersect(b)).Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// randomGraph returns a random instance over E with n values v0..v(n-1)
// and m random edges.
func randomGraph(rng *rand.Rand, n, m int) *Instance {
	return randomGraphValues(rng, n, m, "v")
}

func randomGraphValues(rng *rand.Rand, n, m int, prefix string) *Instance {
	i := NewInstance()
	vals := make([]Value, n)
	for k := range vals {
		vals[k] = Value(prefix + string(rune('0'+k)))
	}
	for k := 0; k < m; k++ {
		i.Add(New("E", vals[rng.Intn(n)], vals[rng.Intn(n)]))
	}
	return i
}

package fact

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Fact keys are injective: distinct facts have distinct keys, equal
// facts equal keys — for random relation names and arguments.
func TestFactKeyInjectiveProperty(t *testing.T) {
	rels := []string{"E", "R", "Ea", "E_1"}
	vals := []Value{"a", "b", "ab", "a_b", "x1"}
	randFact := func(rng *rand.Rand) Fact {
		rel := rels[rng.Intn(len(rels))]
		n := 1 + rng.Intn(3)
		args := make([]Value, n)
		for i := range args {
			args[i] = vals[rng.Intn(len(vals))]
		}
		return New(rel, args...)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randFact(rng), randFact(rng)
		return (a.Key() == b.Key()) == a.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Compare is a total order consistent with Equal.
func TestFactCompareTotalOrder(t *testing.T) {
	facts := []Fact{
		New("E", "a"), New("E", "a", "b"), New("E", "b", "a"),
		New("F", "a"), New("E", "a", "a"), New("E", "ab"),
	}
	for _, a := range facts {
		for _, b := range facts {
			ab, ba := a.Compare(b), b.Compare(a)
			if ab != -ba {
				t.Errorf("Compare(%v,%v)=%d but Compare(%v,%v)=%d", a, b, ab, b, a, ba)
			}
			if (ab == 0) != a.Equal(b) {
				t.Errorf("Compare/Equal inconsistent for %v, %v", a, b)
			}
			for _, c := range facts {
				if a.Compare(b) <= 0 && b.Compare(c) <= 0 && a.Compare(c) > 0 {
					t.Errorf("transitivity broken: %v ≤ %v ≤ %v", a, b, c)
				}
			}
		}
	}
}

// Map distributes over union: (I ∪ J).Map(h) = I.Map(h) ∪ J.Map(h).
func TestMapDistributesOverUnion(t *testing.T) {
	h := Hom{"v0": "x", "v1": "x", "v2": "y"}
	f := func(seedA, seedB int64) bool {
		a := randomGraph(rand.New(rand.NewSource(seedA)), 4, 4)
		b := randomGraph(rand.New(rand.NewSource(seedB)), 4, 4)
		return a.Union(b).Map(h).Equal(a.Map(h).Union(b.Map(h)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Components are invariant under value renaming: the component count
// of I equals that of any injective image of I.
func TestComponentsGenericProperty(t *testing.T) {
	perm := Hom{"v0": "p3", "v1": "p0", "v2": "p4", "v3": "p1", "v4": "p2", "v5": "p5"}
	f := func(seed int64) bool {
		i := randomGraph(rand.New(rand.NewSource(seed)), 6, 6)
		return len(Components(i)) == len(Components(i.Map(perm)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// InducedSubinstance is idempotent and monotone in C.
func TestInducedSubinstanceProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		i := randomGraph(rng, 5, 6)
		c := make(ValueSet)
		for v := range i.ADom() {
			if rng.Intn(2) == 0 {
				c.Add(v)
			}
		}
		j := InducedSubinstance(i, c)
		// Idempotence.
		if !InducedSubinstance(j, c).Equal(j) {
			return false
		}
		// Monotonicity in C: a larger C yields a superset.
		bigger := c.Clone()
		bigger.AddAll(i.ADom())
		return j.SubsetOf(InducedSubinstance(i, bigger))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

package fact

import (
	"strings"
	"testing"
)

func TestNewFact(t *testing.T) {
	f := New("E", "a", "b")
	if f.Rel() != "E" {
		t.Errorf("Rel() = %q, want E", f.Rel())
	}
	if f.Arity() != 2 {
		t.Errorf("Arity() = %d, want 2", f.Arity())
	}
	if f.Arg(0) != "a" || f.Arg(1) != "b" {
		t.Errorf("args = %v, want [a b]", f.Args())
	}
	if got := f.String(); got != "E(a,b)" {
		t.Errorf("String() = %q, want E(a,b)", got)
	}
}

func TestNewFactPanicsOnNullary(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with no args should panic (nullary facts excluded)")
		}
	}()
	New("R")
}

func TestNewFactPanicsOnEmptyRel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with empty relation name should panic")
		}
	}()
	New("", "a")
}

func TestFactImmutable(t *testing.T) {
	args := []Value{"a", "b"}
	f := New("E", args...)
	args[0] = "mutated"
	if f.Arg(0) != "a" {
		t.Error("fact shares storage with constructor argument slice")
	}
	got := f.Args()
	got[0] = "mutated"
	if f.Arg(0) != "a" {
		t.Error("Args() exposes internal storage")
	}
}

func TestFactEqualAndCompare(t *testing.T) {
	a := New("E", "a", "b")
	b := New("E", "a", "b")
	c := New("E", "a", "c")
	d := New("F", "a", "b")
	if !a.Equal(b) {
		t.Error("identical facts not Equal")
	}
	if a.Equal(c) || a.Equal(d) {
		t.Error("distinct facts reported Equal")
	}
	if a.Compare(b) != 0 {
		t.Error("Compare of equal facts != 0")
	}
	if a.Compare(c) >= 0 {
		t.Error("E(a,b) should sort before E(a,c)")
	}
	if a.Compare(d) >= 0 {
		t.Error("relation E should sort before F")
	}
	if c.Compare(a) <= 0 {
		t.Error("Compare not antisymmetric")
	}
}

func TestFactKeyDistinguishes(t *testing.T) {
	pairs := [][2]Fact{
		{New("E", "a", "b"), New("E", "ab")},
		{New("E", "a", "b"), New("Ea", "b")},
		{New("E", "a", "b"), New("E", "b", "a")},
		{New("R", "x"), New("R", "x", "x")},
	}
	for _, p := range pairs {
		if p[0].Key() == p[1].Key() {
			t.Errorf("facts %v and %v have colliding keys", p[0], p[1])
		}
	}
	if New("E", "a", "b").Key() != New("E", "a", "b").Key() {
		t.Error("equal facts have different keys")
	}
}

func TestFactADom(t *testing.T) {
	f := New("T", "a", "b", "a")
	ad := f.ADom()
	if len(ad) != 2 || !ad.Has("a") || !ad.Has("b") {
		t.Errorf("ADom = %v, want {a,b}", ad.Sorted())
	}
}

func TestFactMap(t *testing.T) {
	f := New("E", "a", "b")
	g := f.Map(Hom{"a": "x"})
	if g.String() != "E(x,b)" {
		t.Errorf("Map partial = %v, want E(x,b)", g)
	}
	h := f.Map(Hom{"a": "x", "b": "y"})
	if h.String() != "E(x,y)" {
		t.Errorf("Map total = %v, want E(x,y)", h)
	}
	if f.String() != "E(a,b)" {
		t.Error("Map mutated the receiver")
	}
}

func TestTupleCompare(t *testing.T) {
	cases := []struct {
		a, b Tuple
		want int
	}{
		{Tuple{"a"}, Tuple{"a"}, 0},
		{Tuple{"a"}, Tuple{"b"}, -1},
		{Tuple{"b"}, Tuple{"a"}, 1},
		{Tuple{"a"}, Tuple{"a", "a"}, -1},
		{Tuple{"a", "b"}, Tuple{"a", "c"}, -1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestValueSetOps(t *testing.T) {
	s := NewValueSet("a", "b")
	u := NewValueSet("b", "c")
	if got := s.Union(u); len(got) != 3 {
		t.Errorf("Union size = %d, want 3", len(got))
	}
	if got := s.Intersect(u); len(got) != 1 || !got.Has("b") {
		t.Errorf("Intersect = %v, want {b}", got.Sorted())
	}
	if got := s.Minus(u); len(got) != 1 || !got.Has("a") {
		t.Errorf("Minus = %v, want {a}", got.Sorted())
	}
	if s.Disjoint(u) {
		t.Error("{a,b} and {b,c} reported disjoint")
	}
	if !s.Disjoint(NewValueSet("x", "y")) {
		t.Error("{a,b} and {x,y} reported non-disjoint")
	}
	if !s.Equal(NewValueSet("b", "a")) {
		t.Error("order-insensitive equality failed")
	}
	if s.Equal(u) {
		t.Error("unequal sets reported Equal")
	}
	sorted := NewValueSet("c", "a", "b").Sorted()
	if strings.Join([]string{string(sorted[0]), string(sorted[1]), string(sorted[2])}, "") != "abc" {
		t.Errorf("Sorted = %v, want [a b c]", sorted)
	}
}

package fact

import "testing"

func TestSchemaDeclare(t *testing.T) {
	s := make(Schema)
	if err := s.Declare("E", 2); err != nil {
		t.Fatalf("Declare: %v", err)
	}
	if err := s.Declare("E", 2); err != nil {
		t.Errorf("re-declaring same arity should be fine: %v", err)
	}
	if err := s.Declare("E", 3); err == nil {
		t.Error("conflicting arity redeclaration should fail")
	}
	if err := s.Declare("R", 0); err == nil {
		t.Error("nullary relation should be rejected")
	}
	if err := s.Declare("", 1); err == nil {
		t.Error("empty relation name should be rejected")
	}
}

func TestNewSchemaValidates(t *testing.T) {
	if _, err := NewSchema(map[string]int{"R": 0}); err == nil {
		t.Error("NewSchema should reject arity 0")
	}
	s, err := NewSchema(map[string]int{"E": 2, "V": 1})
	if err != nil {
		t.Fatalf("NewSchema: %v", err)
	}
	if !s.Has("E") || !s.Has("V") || s.Has("X") {
		t.Error("Has misbehaves")
	}
}

func TestSchemaCovers(t *testing.T) {
	s := MustSchema(map[string]int{"E": 2})
	if !s.Covers(New("E", "a", "b")) {
		t.Error("E(a,b) should be covered by {E/2}")
	}
	if s.Covers(New("E", "a")) {
		t.Error("E(a) has wrong arity for {E/2}")
	}
	if s.Covers(New("F", "a", "b")) {
		t.Error("F not declared")
	}
}

func TestSchemaUnionMinus(t *testing.T) {
	a := MustSchema(map[string]int{"E": 2, "V": 1})
	b := MustSchema(map[string]int{"V": 1, "T": 3})
	u, err := a.Union(b)
	if err != nil {
		t.Fatalf("Union: %v", err)
	}
	if len(u) != 3 {
		t.Errorf("Union size = %d, want 3", len(u))
	}
	if _, err := a.Union(MustSchema(map[string]int{"E": 3})); err == nil {
		t.Error("Union with conflicting arity should fail")
	}
	m := a.Minus(b)
	if len(m) != 1 || !m.Has("E") {
		t.Errorf("Minus = %v", m)
	}
	if a.DisjointNames(b) {
		t.Error("schemas sharing V reported disjoint")
	}
	if !a.DisjointNames(MustSchema(map[string]int{"Z": 1})) {
		t.Error("disjoint schemas reported overlapping")
	}
}

func TestSchemaEqualAndString(t *testing.T) {
	a := MustSchema(map[string]int{"E": 2, "V": 1})
	if !a.Equal(MustSchema(map[string]int{"V": 1, "E": 2})) {
		t.Error("Equal should be order-insensitive")
	}
	if a.Equal(MustSchema(map[string]int{"E": 2})) {
		t.Error("unequal schemas reported Equal")
	}
	if got := a.String(); got != "{E/2, V/1}" {
		t.Errorf("String = %q", got)
	}
	if got := GraphSchema().String(); got != "{E/2}" {
		t.Errorf("GraphSchema = %q", got)
	}
}

func TestSchemaCloneIndependent(t *testing.T) {
	a := MustSchema(map[string]int{"E": 2})
	c := a.Clone()
	_ = c.Declare("X", 1)
	if a.Has("X") {
		t.Error("Clone shares storage")
	}
}

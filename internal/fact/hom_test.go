package fact

import (
	"math/rand"
	"testing"
)

func TestFindHomomorphismBasic(t *testing.T) {
	// A path of length 2 maps homomorphically onto a single loop edge.
	path := inst("E(a,b)", "E(b,c)")
	loop := inst("E(x,x)")
	h, ok := FindHomomorphism(path, loop, false)
	if !ok {
		t.Fatal("no homomorphism from path to loop found")
	}
	if !IsHomomorphism(h, path, loop) {
		t.Fatalf("returned mapping %v is not a homomorphism", h)
	}
	// But not injectively.
	if _, ok := FindHomomorphism(path, loop, true); ok {
		t.Error("injective homomorphism from 3-value path to 1-value loop should not exist")
	}
}

func TestFindHomomorphismNone(t *testing.T) {
	// An edge cannot map into an empty instance.
	if _, ok := FindHomomorphism(inst("E(a,b)"), NewInstance(), false); ok {
		t.Error("found homomorphism into empty instance")
	}
	// A triangle does not map into a single directed edge.
	tri := inst("E(a,b)", "E(b,c)", "E(c,a)")
	edge := inst("E(x,y)")
	if _, ok := FindHomomorphism(tri, edge, false); ok {
		t.Error("triangle should not map homomorphically to a single edge")
	}
}

func TestFindHomomorphismEmptySource(t *testing.T) {
	h, ok := FindHomomorphism(NewInstance(), inst("E(a,b)"), true)
	if !ok || len(h) != 0 {
		t.Error("empty instance should map anywhere via the empty mapping")
	}
}

func TestIsHomomorphismRequiresTotality(t *testing.T) {
	i := inst("E(a,b)")
	if IsHomomorphism(Hom{"a": "x"}, i, inst("E(x,b)")) {
		t.Error("partial mapping accepted as homomorphism")
	}
}

func TestInjectiveHomIsEmbedding(t *testing.T) {
	small := inst("E(a,b)")
	big := inst("E(x,y)", "E(y,z)")
	h, ok := FindHomomorphism(small, big, true)
	if !ok {
		t.Fatal("no injective homomorphism from edge into path")
	}
	if !h.IsInjective() {
		t.Fatalf("mapping %v claimed injective but is not", h)
	}
}

func TestHomIsInjective(t *testing.T) {
	if (Hom{"a": "x", "b": "x"}).IsInjective() {
		t.Error("collapsing mapping reported injective")
	}
	if !(Hom{"a": "x", "b": "y"}).IsInjective() {
		t.Error("injective mapping reported non-injective")
	}
}

func TestIdentityHom(t *testing.T) {
	i := inst("E(a,b)", "E(b,c)")
	h := IdentityHom(i.ADom())
	if !IsHomomorphism(h, i, i) {
		t.Error("identity is not a homomorphism from I to I")
	}
	if !h.IsInjective() {
		t.Error("identity not injective")
	}
}

// Every instance maps homomorphically into any superset (via identity),
// and FindHomomorphism must find some witness.
func TestHomomorphismIntoSuperset(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		i := randomGraph(rng, 4, 4)
		j := i.Union(randomGraph(rng, 4, 2))
		h, ok := FindHomomorphism(i, j, true)
		if !ok {
			t.Fatalf("no injective hom from %v into superset %v", i, j)
		}
		if !IsHomomorphism(h, i, j) {
			t.Fatalf("witness %v not a homomorphism", h)
		}
	}
}

// Homomorphisms compose.
func TestHomomorphismComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 50; trial++ {
		i := randomGraph(rng, 3, 3)
		j := randomGraph(rng, 3, 4).Union(i)
		k := j.Union(randomGraph(rng, 3, 2))
		h1, ok1 := FindHomomorphism(i, j, false)
		h2, ok2 := FindHomomorphism(j, k, false)
		if !ok1 || !ok2 {
			continue
		}
		comp := make(Hom, len(h1))
		for v, w := range h1 {
			if x, ok := h2[w]; ok {
				comp[v] = x
			} else {
				comp[v] = w
			}
		}
		if !IsHomomorphism(comp, i, k) {
			t.Fatalf("composition of homomorphisms not a homomorphism: %v ; %v", h1, h2)
		}
	}
}

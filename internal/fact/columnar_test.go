package fact

import "testing"

// ids interns a list of strings for tuple literals in tests.
func ids(ss ...string) []ID {
	out := make([]ID, len(ss))
	for i, s := range ss {
		out[i] = InternString(s)
	}
	return out
}

// TestColumnSetSemantics runs the same add/has/remove script against
// both index shapes: arity 2 (uint64-keyed) and arity 3 (byte-string
// keyed).
func TestColumnSetSemantics(t *testing.T) {
	cases := []struct {
		name   string
		arity  int
		tuples [][]ID
	}{
		{"arity2_k64", 2, [][]ID{ids("a", "b"), ids("b", "c"), ids("c", "a"), ids("a", "a")}},
		{"arity3_kstr", 3, [][]ID{ids("a", "b", "c"), ids("b", "c", "a"), ids("a", "a", "a"), ids("c", "b", "a")}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := newColumn(tc.arity)
			for i, tup := range tc.tuples {
				if !c.add(tup) {
					t.Fatalf("add(%v) = false on first insert", tup)
				}
				if c.add(tup) {
					t.Fatalf("add(%v) = true on duplicate", tup)
				}
				if c.rows() != i+1 {
					t.Fatalf("rows() = %d after %d inserts", c.rows(), i+1)
				}
			}
			for _, tup := range tc.tuples {
				if !c.has(tup) {
					t.Fatalf("has(%v) = false for present tuple", tup)
				}
			}
			// Swap-delete from the middle: the last row moves into the
			// hole and the index must follow it.
			victim := tc.tuples[1]
			if !c.remove(victim) {
				t.Fatal("remove of present tuple = false")
			}
			if c.remove(victim) {
				t.Fatal("remove of absent tuple = true")
			}
			if c.has(victim) {
				t.Fatal("removed tuple still present")
			}
			for i, tup := range tc.tuples {
				if i == 1 {
					continue
				}
				if !c.has(tup) {
					t.Fatalf("swap-delete lost tuple %v", tup)
				}
				if !c.remove(tup) {
					t.Fatalf("index stale after swap-delete: remove(%v) = false", tup)
				}
			}
			if c.rows() != 0 {
				t.Fatalf("rows() = %d after removing everything", c.rows())
			}
		})
	}
}

// TestColumnAddNew checks the unchecked insert leaves the same state
// as the checked one, including the row index used by later removals.
func TestColumnAddNew(t *testing.T) {
	for _, arity := range []int{2, 3} {
		c := newColumn(arity)
		tup := func(s string) []ID {
			args := make([]ID, arity)
			for j := range args {
				args[j] = InternString(s)
			}
			return args
		}
		c.add(tup("x"))
		c.addNew(tup("y"))
		c.addNew(tup("z"))
		if c.rows() != 3 || !c.has(tup("y")) || !c.has(tup("z")) {
			t.Fatalf("arity %d: addNew state wrong: rows=%d", arity, c.rows())
		}
		if !c.remove(tup("x")) || !c.remove(tup("z")) || !c.remove(tup("y")) {
			t.Fatalf("arity %d: remove after addNew failed", arity)
		}
	}
}

// TestColumnEachAndFact checks insertion-order iteration and that
// materialized facts stay valid across later mutation.
func TestColumnEachAndFact(t *testing.T) {
	rel := InternString("E")
	c := newColumn(2)
	c.add(ids("a", "b"))
	c.add(ids("b", "c"))
	f := c.fact(rel, 0)
	var seen [][]ID
	c.each(func(args []ID) bool {
		seen = append(seen, append([]ID(nil), args...))
		return true
	})
	if len(seen) != 2 || seen[0][0] != InternString("a") || seen[1][0] != InternString("b") {
		t.Fatalf("each order wrong: %v", seen)
	}
	c.remove(ids("a", "b"))
	if f.String() != "E(a,b)" {
		t.Fatalf("materialized fact mutated by column removal: %v", f)
	}
}

// TestColumnClone checks clones are fully independent.
func TestColumnClone(t *testing.T) {
	for _, arity := range []int{2, 3} {
		c := newColumn(arity)
		mk := func(s string) []ID {
			args := make([]ID, arity)
			for j := range args {
				args[j] = InternString(s)
			}
			return args
		}
		c.add(mk("p"))
		c.add(mk("q"))
		cl := c.clone()
		c.remove(mk("p"))
		cl.add(mk("r"))
		if !cl.has(mk("p")) || cl.rows() != 3 {
			t.Fatalf("arity %d: clone shares state with original", arity)
		}
		if c.has(mk("r")) || c.rows() != 1 {
			t.Fatalf("arity %d: original shares state with clone", arity)
		}
	}
}

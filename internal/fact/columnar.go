package fact

import "encoding/binary"

// This file implements the columnar relation store behind Instance:
// per (relation, arity) the argument tuples live in flat parallel
// column slices (struct-of-arrays) of interned IDs, with a packed-key
// hash index for O(1) set semantics. Nothing here touches strings —
// membership, insertion and removal are pure integer work, which is
// what makes the fixpoint engines' dedup hot path allocation-free for
// duplicate derivations.

// colKey addresses one column group. Arity is part of the key so an
// instance may (as before) hold same-named facts of differing arities
// without their packed tuples colliding.
type colKey struct {
	rel   ID
	arity int32
}

// column stores all tuples of one (relation, arity) as parallel
// columns. Row order is insertion order; removal is swap-delete, so
// row indices are not stable across removals. The index maps a packed
// tuple to its row: a uint64 key for arity <= 2 (the common case —
// edges, unary flags), a packed byte-string key for wider tuples.
type column struct {
	arity int
	n     int
	cols  [][]ID // len(cols) == arity; all of length n
	k64   map[uint64]int32
	kstr  map[string]int32
}

func newColumn(arity int) *column {
	c := &column{arity: arity, cols: make([][]ID, arity)}
	if arity <= 2 {
		c.k64 = make(map[uint64]int32)
	} else {
		c.kstr = make(map[string]int32)
	}
	return c
}

func (c *column) rows() int { return c.n }

// key64 packs a tuple of arity <= 2 into one uint64. (Arity 0 — the
// zero Fact, representable though not constructible via New — packs
// to the single key 0.)
func key64(args []ID) uint64 {
	switch len(args) {
	case 0:
		return 0
	case 1:
		return uint64(args[0])
	}
	return uint64(args[0])<<32 | uint64(args[1])
}

// packTuple appends the little-endian encoding of the tuple to buf
// (used for the arity >= 3 index and scratch lookups).
func packTuple(buf []byte, args []ID) []byte {
	for _, id := range args {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(id))
	}
	return buf
}

// has reports whether the tuple is present.
func (c *column) has(args []ID) bool {
	if c.k64 != nil {
		_, ok := c.k64[key64(args)]
		return ok
	}
	var scratch [64]byte
	_, ok := c.kstr[string(packTuple(scratch[:0], args))]
	return ok
}

// add inserts the tuple if absent, reporting whether it was new. The
// IDs are copied into the columns; the caller keeps args.
func (c *column) add(args []ID) bool {
	row := int32(c.rows())
	if c.k64 != nil {
		k := key64(args)
		if _, ok := c.k64[k]; ok {
			return false
		}
		c.k64[k] = row
	} else {
		var scratch [64]byte
		k := packTuple(scratch[:0], args)
		if _, ok := c.kstr[string(k)]; ok {
			return false
		}
		c.kstr[string(k)] = row
	}
	for j := range c.cols {
		c.cols[j] = append(c.cols[j], args[j])
	}
	c.n++
	return true
}

// addNew inserts a tuple the caller asserts is absent, skipping the
// existence probe (one map hash instead of two). Inserting a
// duplicate through addNew corrupts the set.
func (c *column) addNew(args []ID) {
	row := int32(c.n)
	if c.k64 != nil {
		c.k64[key64(args)] = row
	} else {
		var scratch [64]byte
		c.kstr[string(packTuple(scratch[:0], args))] = row
	}
	for j := range c.cols {
		c.cols[j] = append(c.cols[j], args[j])
	}
	c.n++
}

// remove deletes the tuple if present (swap-delete), reporting whether
// it was there.
func (c *column) remove(args []ID) bool {
	var row int32
	if c.k64 != nil {
		k := key64(args)
		r, ok := c.k64[k]
		if !ok {
			return false
		}
		row = r
		delete(c.k64, k)
	} else {
		var scratch [64]byte
		k := packTuple(scratch[:0], args)
		r, ok := c.kstr[string(k)]
		if !ok {
			return false
		}
		row = r
		delete(c.kstr, string(k))
	}
	last := c.rows() - 1
	if int(row) != last {
		moved := make([]ID, c.arity)
		for j := range c.cols {
			c.cols[j][row] = c.cols[j][last]
			moved[j] = c.cols[j][row]
		}
		if c.k64 != nil {
			c.k64[key64(moved)] = row
		} else {
			var scratch [64]byte
			c.kstr[string(packTuple(scratch[:0], moved))] = row
		}
	}
	for j := range c.cols {
		c.cols[j] = c.cols[j][:last]
	}
	c.n--
	return true
}

// rowArgs copies row i's tuple into a fresh slice.
func (c *column) rowArgs(i int) []ID {
	args := make([]ID, c.arity)
	for j := range c.cols {
		args[j] = c.cols[j][i]
	}
	return args
}

// fact materializes row i as a Fact. The args are copied: a returned
// Fact stays valid (and immutable) across later mutations of the
// column.
func (c *column) fact(rel ID, i int) Fact {
	return Fact{rel: rel, args: c.rowArgs(i)}
}

// each calls fn for every row in insertion order, stopping early on
// false. fn receives a scratch tuple valid only for the call.
func (c *column) each(fn func(args []ID) bool) {
	n := c.rows()
	scratch := make([]ID, c.arity)
	for i := 0; i < n; i++ {
		for j := range c.cols {
			scratch[j] = c.cols[j][i]
		}
		if !fn(scratch) {
			return
		}
	}
}

// clone returns an independent copy of the column.
func (c *column) clone() *column {
	out := &column{arity: c.arity, n: c.n, cols: make([][]ID, c.arity)}
	for j := range c.cols {
		out.cols[j] = append([]ID(nil), c.cols[j]...)
	}
	if c.k64 != nil {
		out.k64 = make(map[uint64]int32, len(c.k64))
		for k, v := range c.k64 {
			out.k64[k] = v
		}
	} else {
		out.kstr = make(map[string]int32, len(c.kstr))
		for k, v := range c.kstr {
			out.kstr[k] = v
		}
	}
	return out
}

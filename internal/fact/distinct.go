package fact

// This file implements the notions of Section 3.1 of the paper:
// domain-distinct and domain-disjoint facts and instances. They underpin
// the weaker forms of monotonicity (Mdistinct and Mdisjoint).

// DomainDistinctFact reports whether f is domain distinct from I:
// adom(f) \ adom(I) ≠ ∅, i.e. f contains at least one value that does
// not occur in I.
func DomainDistinctFact(f Fact, i *Instance) bool {
	ad := i.ADom()
	for n := 0; n < f.Arity(); n++ {
		if !ad.Has(f.Arg(n)) {
			return true
		}
	}
	return false
}

// DomainDisjointFact reports whether f is domain disjoint from I:
// adom(f) ∩ adom(I) = ∅, i.e. f contains only values not occurring in I.
func DomainDisjointFact(f Fact, i *Instance) bool {
	ad := i.ADom()
	for n := 0; n < f.Arity(); n++ {
		if ad.Has(f.Arg(n)) {
			return false
		}
	}
	return true
}

// DomainDistinct reports whether the instance J is domain distinct from
// I: every fact of J contains at least one value not occurring in I.
func DomainDistinct(j, i *Instance) bool {
	ad := i.ADom()
	ok := true
	j.Each(func(f Fact) bool {
		hasNew := false
		for n := 0; n < f.Arity(); n++ {
			if !ad.Has(f.Arg(n)) {
				hasNew = true
				break
			}
		}
		if !hasNew {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// DomainDisjoint reports whether the instance J is domain disjoint from
// I: no fact of J contains any value occurring in I. Equivalently,
// adom(J) ∩ adom(I) = ∅.
func DomainDisjoint(j, i *Instance) bool {
	return j.ADom().Disjoint(i.ADom())
}

// InducedSubinstance returns the induced subinstance of I on the value
// set C: {f ∈ I | adom(f) ⊆ C}. Per Section 3.2, J is an induced
// subinstance of I exactly when J = InducedSubinstance(I, adom(J)).
func InducedSubinstance(i *Instance, c ValueSet) *Instance {
	out := NewInstance()
	i.Each(func(f Fact) bool {
		for n := 0; n < f.Arity(); n++ {
			if !c.Has(f.Arg(n)) {
				return true
			}
		}
		out.Add(f)
		return true
	})
	return out
}

// IsInducedSubinstance reports whether J is an induced subinstance of I:
// J = {f ∈ I | adom(f) ⊆ adom(J)}.
func IsInducedSubinstance(j, i *Instance) bool {
	return j.Equal(InducedSubinstance(i, j.ADom()))
}

package fact

// This file implements homomorphisms between instances (Section 3.2):
// a homomorphism from I to J is a mapping h on adom(I) such that
// R(d̄) ∈ I implies R(h(d̄)) ∈ J. Homomorphism search is by
// backtracking over the active domain; injective search additionally
// requires h to be one-to-one. These are used by the preservation
// classes H, Hinj and E (Lemma 3.2).

// Hom is a value mapping, the carrier of a homomorphism.
type Hom map[Value]Value

// IsHomomorphism reports whether h (total on adom(I)) is a
// homomorphism from I to J.
func IsHomomorphism(h Hom, i, j *Instance) bool {
	for v := range i.ADom() {
		if _, ok := h[v]; !ok {
			return false
		}
	}
	ok := true
	i.Each(func(f Fact) bool {
		if !j.Has(f.Map(h)) {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// IsInjective reports whether h maps distinct values to distinct values.
func (h Hom) IsInjective() bool {
	seen := make(ValueSet, len(h))
	for _, w := range h {
		if seen.Has(w) {
			return false
		}
		seen.Add(w)
	}
	return true
}

// FindHomomorphism searches for a homomorphism from I to J, returning
// it and true on success. If injective is set, only injective
// homomorphisms are considered.
func FindHomomorphism(i, j *Instance, injective bool) (Hom, bool) {
	src := i.ADom().Sorted()
	dst := j.ADom().Sorted()
	facts := i.Facts()
	h := make(Hom, len(src))
	used := make(ValueSet)

	// consistent reports whether the partial mapping h can still be
	// extended: every fact of I all of whose values are already mapped
	// must have its image in J.
	consistent := func() bool {
		for _, f := range facts {
			allMapped := true
			for n := 0; n < f.Arity(); n++ {
				if _, ok := h[f.Arg(n)]; !ok {
					allMapped = false
					break
				}
			}
			if allMapped && !j.Has(f.Map(h)) {
				return false
			}
		}
		return true
	}

	var rec func(k int) bool
	rec = func(k int) bool {
		if k == len(src) {
			return true
		}
		v := src[k]
		for _, w := range dst {
			if injective && used.Has(w) {
				continue
			}
			h[v] = w
			if injective {
				used.Add(w)
			}
			if consistent() && rec(k+1) {
				return true
			}
			delete(h, v)
			if injective {
				delete(used, w)
			}
		}
		return false
	}

	if len(src) == 0 {
		return h, true // the empty instance maps anywhere
	}
	if rec(0) {
		return h, true
	}
	return nil, false
}

// IdentityHom returns the identity mapping on the given value set.
func IdentityHom(s ValueSet) Hom {
	h := make(Hom, len(s))
	for v := range s {
		h[v] = v
	}
	return h
}

package fact_test

import (
	"fmt"

	"repro/internal/fact"
)

// Instances are finite sets of facts with a deterministic order.
func ExampleParseInstance() {
	i, err := fact.ParseInstance(`
		E(a,b)
		E(b,c)   # comments are allowed
	`)
	if err != nil {
		panic(err)
	}
	fmt.Println(i)
	fmt.Println("adom:", i.ADom().Sorted())
	// Output:
	// {E(a,b), E(b,c)}
	// adom: [a b c]
}

// Domain-distinctness and -disjointness (Section 3.1): the added
// instance J is distinct when every fact brings a new value, disjoint
// when it shares no value at all.
func ExampleDomainDistinct() {
	i := fact.MustParseInstance(`E(a,b)`)
	fmt.Println(fact.DomainDistinct(fact.MustParseInstance(`E(a,c)`), i))
	fmt.Println(fact.DomainDisjoint(fact.MustParseInstance(`E(a,c)`), i))
	fmt.Println(fact.DomainDisjoint(fact.MustParseInstance(`E(x,y)`), i))
	// Output:
	// true
	// false
	// true
}

// Components partition an instance into value-disjoint pieces
// (Section 5.1): con-Datalog¬ queries distribute over them.
func ExampleComponents() {
	i := fact.MustParseInstance(`E(a,b) E(b,c) E(x,y)`)
	for _, c := range fact.Components(i) {
		fmt.Println(c)
	}
	// Output:
	// {E(a,b), E(b,c)}
	// {E(x,y)}
}

// A homomorphism maps one instance into another; a path maps onto a
// loop by collapsing all values.
func ExampleFindHomomorphism() {
	path := fact.MustParseInstance(`E(a,b) E(b,c)`)
	loop := fact.MustParseInstance(`E(x,x)`)
	h, ok := fact.FindHomomorphism(path, loop, false)
	fmt.Println(ok, h["a"], h["b"], h["c"])
	// Output:
	// true x x x
}

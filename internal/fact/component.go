package fact

// This file implements components of an instance (Section 5.1,
// Definition 5 context): J is a component of I when J ⊆ I, J ≠ ∅,
// adom(J) ∩ adom(I\J) = ∅, and J is minimal with this property.
// Components partition I by connectivity of the "shares a value" graph
// on facts; they are computed here with a union-find over adom(I).

// unionFind is a classic disjoint-set structure over integer ids with
// path compression and union by rank.
type unionFind struct {
	parent []int
	rank   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

func (uf *unionFind) union(x, y int) {
	rx, ry := uf.find(x), uf.find(y)
	if rx == ry {
		return
	}
	if uf.rank[rx] < uf.rank[ry] {
		rx, ry = ry, rx
	}
	uf.parent[ry] = rx
	if uf.rank[rx] == uf.rank[ry] {
		uf.rank[rx]++
	}
}

// Components returns co(I), the components of I, in a deterministic
// order (sorted by the smallest fact of each component). The components
// partition I, each is nonempty, and distinct components have disjoint
// active domains.
func Components(i *Instance) []*Instance {
	values := i.ADom().Sorted()
	id := make(map[Value]int, len(values))
	for n, v := range values {
		id[v] = n
	}
	uf := newUnionFind(len(values))
	i.Each(func(f Fact) bool {
		first := id[f.Arg(0)]
		for n := 1; n < f.Arity(); n++ {
			uf.union(first, id[f.Arg(n)])
		}
		return true
	})

	groups := make(map[int]*Instance)
	for _, f := range i.Facts() {
		root := uf.find(id[f.Arg(0)])
		g, ok := groups[root]
		if !ok {
			g = NewInstance()
			groups[root] = g
		}
		g.Add(f)
	}

	// Deterministic order: Facts() above is sorted, so the first fact
	// added to each group is its minimum; order groups by that fact.
	out := make([]*Instance, 0, len(groups))
	for _, g := range groups {
		out = append(out, g)
	}
	sortInstancesByMinFact(out)
	return out
}

func sortInstancesByMinFact(xs []*Instance) {
	min := func(g *Instance) Fact { return g.Facts()[0] }
	for a := 1; a < len(xs); a++ {
		for b := a; b > 0 && min(xs[b]).Compare(min(xs[b-1])) < 0; b-- {
			xs[b], xs[b-1] = xs[b-1], xs[b]
		}
	}
}

// IsComponent reports whether J is a component of I per the definition
// in Section 5.1: J ⊆ I, J nonempty, adom(J) ∩ adom(I\J) = ∅, and no
// strict nonempty subset J' of J has adom(J') ∩ adom(I\J') = ∅.
func IsComponent(j, i *Instance) bool {
	if j.Empty() || !j.SubsetOf(i) {
		return false
	}
	if !j.ADom().Disjoint(i.Minus(j).ADom()) {
		return false
	}
	// Minimality: J must itself be a single component.
	return len(Components(j)) == 1
}

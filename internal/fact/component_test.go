package fact

import (
	"math/rand"
	"testing"
)

func TestComponentsBasic(t *testing.T) {
	i := inst("E(a,b)", "E(b,c)", "E(x,y)")
	cs := Components(i)
	if len(cs) != 2 {
		t.Fatalf("got %d components, want 2: %v", len(cs), cs)
	}
	if !cs[0].Equal(inst("E(a,b)", "E(b,c)")) {
		t.Errorf("component 0 = %v", cs[0])
	}
	if !cs[1].Equal(inst("E(x,y)")) {
		t.Errorf("component 1 = %v", cs[1])
	}
}

func TestComponentsEmpty(t *testing.T) {
	if cs := Components(NewInstance()); len(cs) != 0 {
		t.Errorf("empty instance has %d components, want 0", len(cs))
	}
}

func TestComponentsSingleFact(t *testing.T) {
	cs := Components(inst("E(a,a)"))
	if len(cs) != 1 || cs[0].Len() != 1 {
		t.Errorf("Components({E(a,a)}) = %v", cs)
	}
}

func TestComponentsCrossRelation(t *testing.T) {
	// Facts of different relations sharing a value belong to one component.
	i := inst("E(a,b)", "R(b,c,d)", "S(z)")
	cs := Components(i)
	if len(cs) != 2 {
		t.Fatalf("got %d components, want 2", len(cs))
	}
}

func TestComponentsChainViaMiddlePosition(t *testing.T) {
	// Connectivity uses every argument position, not just the first.
	i := inst("T(a,m,b)", "T(c,m,d)")
	if cs := Components(i); len(cs) != 1 {
		t.Errorf("facts sharing middle value split into %d components", len(cs))
	}
}

func TestComponentsInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		i := randomGraph(rng, 6, 5)
		cs := Components(i)

		// Components partition I.
		u := NewInstance()
		total := 0
		for _, c := range cs {
			total += c.Len()
			u.AddAll(c)
		}
		if total != i.Len() || !u.Equal(i) {
			t.Fatalf("components do not partition %v: %v", i, cs)
		}

		// Pairwise adom-disjoint, each a valid component.
		for a := range cs {
			if !IsComponent(cs[a], i) {
				t.Fatalf("returned non-component %v of %v", cs[a], i)
			}
			for b := a + 1; b < len(cs); b++ {
				if !cs[a].ADom().Disjoint(cs[b].ADom()) {
					t.Fatalf("components %v and %v share values", cs[a], cs[b])
				}
			}
		}
	}
}

func TestIsComponentRejects(t *testing.T) {
	i := inst("E(a,b)", "E(b,c)", "E(x,y)")
	// Non-minimal union of two components.
	if IsComponent(i, i) {
		t.Error("whole two-component instance accepted as a component")
	}
	// Subset that shares values with the rest.
	if IsComponent(inst("E(a,b)"), i) {
		t.Error("subset sharing value b with E(b,c) accepted as component")
	}
	// Empty set.
	if IsComponent(NewInstance(), i) {
		t.Error("empty set accepted as component")
	}
	// Not a subset of I.
	if IsComponent(inst("E(q,q)"), i) {
		t.Error("non-subset accepted as component")
	}
	// A genuine component.
	if !IsComponent(inst("E(x,y)"), i) {
		t.Error("genuine component rejected")
	}
}

// co(I ∪ J) = co(I) ∪ co(J) for domain-disjoint I, J (used in Thm 5.3).
func TestComponentsOfDisjointUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		i := randomGraph(rng, 4, 4)
		j := randomGraphValues(rng, 4, 4, "w")
		if !DomainDisjoint(j, i) {
			t.Fatal("generator broke disjointness")
		}
		all := Components(i.Union(j))
		want := len(Components(i)) + len(Components(j))
		if len(all) != want {
			t.Fatalf("co(I∪J) has %d components, want %d", len(all), want)
		}
	}
}

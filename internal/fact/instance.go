package fact

import (
	"slices"
	"strings"
)

// Instance is a database instance: a finite set of facts. The zero
// value is not usable; create instances with NewInstance. Instances
// have set semantics (adding a fact twice is a no-op).
//
// Facts are stored columnar: per (relation, arity) the argument
// tuples live in flat parallel slices of interned IDs with a
// packed-key hash index (see columnar.go). Membership and mutation
// are integer work — no fact key strings are built — and the ID-level
// accessors (HasIDs, AddIDs) let the fixpoint engines deduplicate
// derived tuples without materializing a Fact at all.
type Instance struct {
	rels map[colKey]*column
	n    int
	// Write-path memo for colFor: fixpoint engines insert long runs of
	// facts into the same relation, and the memo turns the per-insert
	// column lookup into a comparison. Only the mutation path uses it —
	// concurrent readers go through col, which never touches the memo.
	lastK colKey
	lastC *column
}

// SortFacts sorts facts in place into the package's canonical
// deterministic order — by relation name, then argument tuple
// (Fact.Compare). This is the single definition of the
// deterministic-iteration contract: every sorted fact slice the
// package (and the engines above it) exposes uses it.
func SortFacts(fs []Fact) {
	slices.SortFunc(fs, Fact.Compare)
}

// FactStrings renders facts in canonical SortFacts order as their
// textual forms. The input slice is left untouched (the serving layer
// hands it slices backed by shared copy-on-write storage). The result
// is the wire representation of a fact list: every byte-identical
// response guarantee in the serving protocol reduces to this function
// being a pure function of the fact set.
func FactStrings(fs []Fact) []string {
	sorted := make([]Fact, len(fs))
	copy(sorted, fs)
	SortFacts(sorted)
	out := make([]string, len(sorted))
	for i, f := range sorted {
		out[i] = f.String()
	}
	return out
}

// NewInstance creates an instance containing the given facts.
func NewInstance(facts ...Fact) *Instance {
	i := &Instance{rels: make(map[colKey]*column)}
	for _, f := range facts {
		i.Add(f)
	}
	return i
}

func (i *Instance) col(rel ID, arity int) *column {
	return i.rels[colKey{rel: rel, arity: int32(arity)}]
}

func (i *Instance) colFor(rel ID, arity int) *column {
	k := colKey{rel: rel, arity: int32(arity)}
	if i.lastC != nil && i.lastK == k {
		return i.lastC
	}
	c := i.rels[k]
	if c == nil {
		c = newColumn(arity)
		i.rels[k] = c
	}
	i.lastK, i.lastC = k, c
	return c
}

// Add inserts f, reporting whether it was newly added.
func (i *Instance) Add(f Fact) bool {
	return i.AddIDs(f.rel, f.args)
}

// AddIDs inserts the fact rel(args...) given as interned IDs,
// reporting whether it was newly added. The IDs are copied; the
// caller keeps args.
func (i *Instance) AddIDs(rel ID, args []ID) bool {
	if !i.colFor(rel, len(args)).add(args) {
		return false
	}
	i.n++
	return true
}

// AddNewIDs inserts the fact rel(args...) asserting it is absent,
// skipping the membership probe. The fixpoint engines use it to apply
// deltas that were already judged against the instance; inserting a
// duplicate through it corrupts the set. The IDs are copied.
func (i *Instance) AddNewIDs(rel ID, args []ID) {
	i.colFor(rel, len(args)).addNew(args)
	i.n++
}

// AddAll inserts every fact of j, reporting how many were newly added.
func (i *Instance) AddAll(j *Instance) int {
	n := 0
	for k, c := range j.rels {
		if c.rows() == 0 {
			continue
		}
		dst := i.colFor(k.rel, int(k.arity))
		c.each(func(args []ID) bool {
			if dst.add(args) {
				i.n++
				n++
			}
			return true
		})
	}
	return n
}

// Remove deletes f, reporting whether it was present.
func (i *Instance) Remove(f Fact) bool {
	c := i.col(f.rel, len(f.args))
	if c == nil || !c.remove(f.args) {
		return false
	}
	i.n--
	return true
}

// RemoveAll deletes every fact of j from i.
func (i *Instance) RemoveAll(j *Instance) {
	for k, c := range j.rels {
		dst := i.col(k.rel, int(k.arity))
		if dst == nil {
			continue
		}
		c.each(func(args []ID) bool {
			if dst.remove(args) {
				i.n--
			}
			return true
		})
	}
}

// Has reports whether f is in the instance.
func (i *Instance) Has(f Fact) bool {
	return i.HasIDs(f.rel, f.args)
}

// HasIDs reports whether the fact rel(args...) given as interned IDs
// is in the instance.
func (i *Instance) HasIDs(rel ID, args []ID) bool {
	c := i.col(rel, len(args))
	return c != nil && c.has(args)
}

// Len returns |I|, the number of facts.
func (i *Instance) Len() int { return i.n }

// Empty reports whether the instance contains no facts.
func (i *Instance) Empty() bool { return i.n == 0 }

// Facts returns all facts in deterministic (sorted) order.
func (i *Instance) Facts() []Fact {
	fs := make([]Fact, 0, i.n)
	for k, c := range i.rels {
		for r := 0; r < c.rows(); r++ {
			fs = append(fs, c.fact(k.rel, r))
		}
	}
	SortFacts(fs)
	return fs
}

// Each calls fn for every fact in unspecified order; it stops early if
// fn returns false. Use Facts for deterministic order.
func (i *Instance) Each(fn func(Fact) bool) {
	for k, c := range i.rels {
		for r := 0; r < c.rows(); r++ {
			if !fn(c.fact(k.rel, r)) {
				return
			}
		}
	}
}

// Rel returns the facts of relation rel in sorted order.
func (i *Instance) Rel(rel string) []Fact {
	id := InternString(rel)
	var fs []Fact
	for k, c := range i.rels {
		if k.rel != id {
			continue
		}
		for r := 0; r < c.rows(); r++ {
			fs = append(fs, c.fact(k.rel, r))
		}
	}
	SortFacts(fs)
	return fs
}

// ADom returns adom(I), the set of all values occurring in facts of I.
func (i *Instance) ADom() ValueSet {
	s := make(ValueSet)
	for _, c := range i.rels {
		for _, col := range c.cols {
			for _, id := range col {
				s.Add(Value(symbols.lookup(id)))
			}
		}
	}
	return s
}

// Schema returns the minimal schema the instance is over.
func (i *Instance) Schema() Schema {
	s := make(Schema)
	for k, c := range i.rels {
		if c.rows() > 0 {
			s[symbols.lookup(k.rel)] = int(k.arity)
		}
	}
	return s
}

// Restrict returns I|σ, the maximal subset of I over the schema σ.
func (i *Instance) Restrict(s Schema) *Instance {
	out := NewInstance()
	for k, c := range i.rels {
		rel := symbols.lookup(k.rel)
		if ar, ok := s.Arity(rel); !ok || ar != int(k.arity) {
			continue
		}
		dst := out.colFor(k.rel, int(k.arity))
		c.each(func(args []ID) bool {
			if dst.add(args) {
				out.n++
			}
			return true
		})
	}
	return out
}

// RestrictRel returns the subset of I whose facts use the given relation name.
func (i *Instance) RestrictRel(rel string) *Instance {
	id := InternString(rel)
	out := NewInstance()
	for k, c := range i.rels {
		if k.rel != id {
			continue
		}
		out.rels[k] = c.clone()
		out.n += c.rows()
	}
	return out
}

// Union returns a fresh instance I ∪ J.
func (i *Instance) Union(j *Instance) *Instance {
	out := i.Clone()
	out.AddAll(j)
	return out
}

// Minus returns a fresh instance I \ J.
func (i *Instance) Minus(j *Instance) *Instance {
	out := NewInstance()
	for k, c := range i.rels {
		other := j.col(k.rel, int(k.arity))
		dst := out.colFor(k.rel, int(k.arity))
		c.each(func(args []ID) bool {
			if other == nil || !other.has(args) {
				if dst.add(args) {
					out.n++
				}
			}
			return true
		})
	}
	return out
}

// Intersect returns a fresh instance I ∩ J.
func (i *Instance) Intersect(j *Instance) *Instance {
	small, large := i, j
	if large.Len() < small.Len() {
		small, large = large, small
	}
	out := NewInstance()
	for k, c := range small.rels {
		other := large.col(k.rel, int(k.arity))
		if other == nil {
			continue
		}
		dst := out.colFor(k.rel, int(k.arity))
		c.each(func(args []ID) bool {
			if other.has(args) {
				if dst.add(args) {
					out.n++
				}
			}
			return true
		})
	}
	return out
}

// SubsetOf reports whether I ⊆ J.
func (i *Instance) SubsetOf(j *Instance) bool {
	if i.Len() > j.Len() {
		return false
	}
	for k, c := range i.rels {
		other := j.col(k.rel, int(k.arity))
		if other == nil && c.rows() > 0 {
			return false
		}
		ok := true
		c.each(func(args []ID) bool {
			if !other.has(args) {
				ok = false
				return false
			}
			return true
		})
		if !ok {
			return false
		}
	}
	return true
}

// Equal reports whether both instances contain exactly the same facts.
func (i *Instance) Equal(j *Instance) bool {
	return i.Len() == j.Len() && i.SubsetOf(j)
}

// Clone returns an independent copy of the instance.
func (i *Instance) Clone() *Instance {
	out := &Instance{rels: make(map[colKey]*column, len(i.rels)), n: i.n}
	for k, c := range i.rels {
		out.rels[k] = c.clone()
	}
	return out
}

// Map returns the instance {f.Map(h) | f ∈ I}: the image of I under
// the value mapping h (a homomorphism application or a permutation).
func (i *Instance) Map(h map[Value]Value) *Instance {
	// Translate once to an ID-level mapping; identity entries are
	// dropped so the common no-op case stays cheap.
	hid := make(map[ID]ID, len(h))
	for from, to := range h {
		f, t := Intern(from), Intern(to)
		if f != t {
			hid[f] = t
		}
	}
	out := NewInstance()
	for k, c := range i.rels {
		dst := out.colFor(k.rel, int(k.arity))
		mapped := make([]ID, int(k.arity))
		c.each(func(args []ID) bool {
			for x, id := range args {
				if w, ok := hid[id]; ok {
					mapped[x] = w
				} else {
					mapped[x] = id
				}
			}
			if dst.add(mapped) {
				out.n++
			}
			return true
		})
	}
	return out
}

// String renders the instance as a sorted, brace-delimited fact list,
// e.g. "{E(a,b), E(b,c)}".
func (i *Instance) String() string {
	fs := i.Facts()
	parts := make([]string, len(fs))
	for n, f := range fs {
		parts[n] = f.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

package fact

import (
	"sort"
	"strings"
)

// Instance is a database instance: a finite set of facts. The zero
// value is not usable; create instances with NewInstance. Instances
// have set semantics (adding a fact twice is a no-op).
type Instance struct {
	facts map[string]Fact
}

// NewInstance creates an instance containing the given facts.
func NewInstance(facts ...Fact) *Instance {
	i := &Instance{facts: make(map[string]Fact, len(facts))}
	for _, f := range facts {
		i.Add(f)
	}
	return i
}

// Add inserts f, reporting whether it was newly added.
func (i *Instance) Add(f Fact) bool {
	k := f.Key()
	if _, ok := i.facts[k]; ok {
		return false
	}
	i.facts[k] = f
	return true
}

// AddAll inserts every fact of j, reporting how many were newly added.
func (i *Instance) AddAll(j *Instance) int {
	n := 0
	for k, f := range j.facts {
		if _, ok := i.facts[k]; !ok {
			i.facts[k] = f
			n++
		}
	}
	return n
}

// Remove deletes f, reporting whether it was present.
func (i *Instance) Remove(f Fact) bool {
	k := f.Key()
	if _, ok := i.facts[k]; !ok {
		return false
	}
	delete(i.facts, k)
	return true
}

// RemoveAll deletes every fact of j from i.
func (i *Instance) RemoveAll(j *Instance) {
	for k := range j.facts {
		delete(i.facts, k)
	}
}

// Has reports whether f is in the instance.
func (i *Instance) Has(f Fact) bool {
	_, ok := i.facts[f.Key()]
	return ok
}

// Len returns |I|, the number of facts.
func (i *Instance) Len() int { return len(i.facts) }

// Empty reports whether the instance contains no facts.
func (i *Instance) Empty() bool { return len(i.facts) == 0 }

// Facts returns all facts in deterministic (sorted) order.
func (i *Instance) Facts() []Fact {
	fs := make([]Fact, 0, len(i.facts))
	for _, f := range i.facts {
		fs = append(fs, f)
	}
	sort.Slice(fs, func(a, b int) bool { return fs[a].Compare(fs[b]) < 0 })
	return fs
}

// Each calls fn for every fact in unspecified order; it stops early if
// fn returns false. Use Facts for deterministic order.
func (i *Instance) Each(fn func(Fact) bool) {
	for _, f := range i.facts {
		if !fn(f) {
			return
		}
	}
}

// Rel returns the facts of relation rel in sorted order.
func (i *Instance) Rel(rel string) []Fact {
	var fs []Fact
	for _, f := range i.facts {
		if f.Rel() == rel {
			fs = append(fs, f)
		}
	}
	sort.Slice(fs, func(a, b int) bool { return fs[a].Compare(fs[b]) < 0 })
	return fs
}

// ADom returns adom(I), the set of all values occurring in facts of I.
func (i *Instance) ADom() ValueSet {
	s := make(ValueSet)
	for _, f := range i.facts {
		for n := 0; n < f.Arity(); n++ {
			s.Add(f.Arg(n))
		}
	}
	return s
}

// Schema returns the minimal schema the instance is over.
func (i *Instance) Schema() Schema {
	s := make(Schema)
	for _, f := range i.facts {
		s[f.Rel()] = f.Arity()
	}
	return s
}

// Restrict returns I|σ, the maximal subset of I over the schema σ.
func (i *Instance) Restrict(s Schema) *Instance {
	out := NewInstance()
	for k, f := range i.facts {
		if s.Covers(f) {
			out.facts[k] = f
		}
	}
	return out
}

// RestrictRel returns the subset of I whose facts use the given relation name.
func (i *Instance) RestrictRel(rel string) *Instance {
	out := NewInstance()
	for k, f := range i.facts {
		if f.Rel() == rel {
			out.facts[k] = f
		}
	}
	return out
}

// Union returns a fresh instance I ∪ J.
func (i *Instance) Union(j *Instance) *Instance {
	out := NewInstance()
	for k, f := range i.facts {
		out.facts[k] = f
	}
	for k, f := range j.facts {
		out.facts[k] = f
	}
	return out
}

// Minus returns a fresh instance I \ J.
func (i *Instance) Minus(j *Instance) *Instance {
	out := NewInstance()
	for k, f := range i.facts {
		if _, ok := j.facts[k]; !ok {
			out.facts[k] = f
		}
	}
	return out
}

// Intersect returns a fresh instance I ∩ J.
func (i *Instance) Intersect(j *Instance) *Instance {
	small, large := i, j
	if large.Len() < small.Len() {
		small, large = large, small
	}
	out := NewInstance()
	for k, f := range small.facts {
		if _, ok := large.facts[k]; ok {
			out.facts[k] = f
		}
	}
	return out
}

// SubsetOf reports whether I ⊆ J.
func (i *Instance) SubsetOf(j *Instance) bool {
	if i.Len() > j.Len() {
		return false
	}
	for k := range i.facts {
		if _, ok := j.facts[k]; !ok {
			return false
		}
	}
	return true
}

// Equal reports whether both instances contain exactly the same facts.
func (i *Instance) Equal(j *Instance) bool {
	return i.Len() == j.Len() && i.SubsetOf(j)
}

// Clone returns an independent copy of the instance.
func (i *Instance) Clone() *Instance {
	out := &Instance{facts: make(map[string]Fact, len(i.facts))}
	for k, f := range i.facts {
		out.facts[k] = f
	}
	return out
}

// Map returns the instance {f.Map(h) | f ∈ I}: the image of I under
// the value mapping h (a homomorphism application or a permutation).
func (i *Instance) Map(h map[Value]Value) *Instance {
	out := NewInstance()
	for _, f := range i.facts {
		out.Add(f.Map(h))
	}
	return out
}

// String renders the instance as a sorted, brace-delimited fact list,
// e.g. "{E(a,b), E(b,c)}".
func (i *Instance) String() string {
	fs := i.Facts()
	parts := make([]string, len(fs))
	for n, f := range fs {
		parts[n] = f.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

package fact

import (
	"fmt"
	"sync"
	"testing"
)

func TestInternRoundTrip(t *testing.T) {
	a := Intern("intern-rt-a")
	b := Intern("intern-rt-b")
	if a == b {
		t.Fatalf("distinct values interned to the same ID %d", a)
	}
	if got := Intern("intern-rt-a"); got != a {
		t.Fatalf("re-interning changed the ID: %d then %d", a, got)
	}
	if got := Symbol(a); got != "intern-rt-a" {
		t.Fatalf("Symbol(%d) = %q", a, got)
	}
	if got := InternString(""); got != 0 {
		t.Fatalf("empty string must be the reserved ID 0, got %d", got)
	}
	if got := Symbol(0); got != "" {
		t.Fatalf("Symbol(0) = %q, want empty", got)
	}
}

func TestLookupValueDoesNotIntern(t *testing.T) {
	const v = Value("lookup-never-interned")
	if id, ok := LookupValue(v); ok {
		t.Fatalf("LookupValue found never-interned value as %d", id)
	}
	// A failed probe must not have grown the table.
	if _, ok := LookupValue(v); ok {
		t.Fatal("failed LookupValue interned the value as a side effect")
	}
	want := Intern(v)
	got, ok := LookupValue(v)
	if !ok || got != want {
		t.Fatalf("LookupValue after Intern = (%d, %v), want (%d, true)", got, ok, want)
	}
}

// TestConcurrentInterning hammers the symbol table from many
// goroutines with overlapping value sets large enough to force spine
// growth (symChunkSize new symbols cross a chunk boundary), then
// checks every value got exactly one ID and every ID reads back.
func TestConcurrentInterning(t *testing.T) {
	const goroutines = 8
	n := symChunkSize + 100
	ids := make([][]ID, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		ids[g] = make([]ID, n)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				id := InternString(fmt.Sprintf("conc-%d", i))
				ids[g][i] = id
				// Lock-free read path: the ID must resolve immediately.
				if got := Symbol(id); got != Value(fmt.Sprintf("conc-%d", i)) {
					panic(fmt.Sprintf("Symbol(%d) = %q mid-intern", id, got))
				}
			}
		}()
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		for g := 1; g < goroutines; g++ {
			if ids[g][i] != ids[0][i] {
				t.Fatalf("value conc-%d interned to %d and %d", i, ids[0][i], ids[g][i])
			}
		}
	}
}

func TestAppendPackedIDs(t *testing.T) {
	a, b := Intern("pack-a"), Intern("pack-b")
	k1 := AppendPackedIDs(nil, a, b)
	k2 := AppendPackedIDs(nil, b, a)
	if len(k1) != 8 || len(k2) != 8 {
		t.Fatalf("packed lengths %d, %d; want 8", len(k1), len(k2))
	}
	if string(k1) == string(k2) {
		t.Fatal("packed keys of distinct tuples collide")
	}
	if got := AppendPackedIDs(k1, a); len(got) != 12 {
		t.Fatalf("appending to an existing key: len %d, want 12", len(got))
	}
}

package fact

import (
	"fmt"
	"sort"
)

// Schema is a database schema: a finite map from relation names to
// arities. All arities are at least one (the paper excludes nullary
// relations, Section 2).
type Schema map[string]int

// NewSchema builds a schema from alternating name/arity pairs declared
// as a map literal; it validates every arity.
func NewSchema(rels map[string]int) (Schema, error) {
	s := make(Schema, len(rels))
	for name, ar := range rels {
		if err := s.Declare(name, ar); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// MustSchema is like NewSchema but panics on invalid input. Intended for
// statically known schemas in tests and examples.
func MustSchema(rels map[string]int) Schema {
	s, err := NewSchema(rels)
	if err != nil {
		panic(err)
	}
	return s
}

// GraphSchema is the schema used throughout the paper's examples:
// a single binary edge relation E.
func GraphSchema() Schema {
	return Schema{"E": 2}
}

// Declare adds the relation name with the given arity. It is an error
// to declare an arity below one or to redeclare a name at a different
// arity.
func (s Schema) Declare(name string, arity int) error {
	if name == "" {
		return fmt.Errorf("schema: empty relation name")
	}
	if arity < 1 {
		return fmt.Errorf("schema: relation %s has arity %d; nullary or negative arities are not allowed", name, arity)
	}
	if prev, ok := s[name]; ok && prev != arity {
		return fmt.Errorf("schema: relation %s redeclared with arity %d (was %d)", name, arity, prev)
	}
	s[name] = arity
	return nil
}

// Has reports whether the schema declares the relation name.
func (s Schema) Has(name string) bool {
	_, ok := s[name]
	return ok
}

// Arity returns the arity of the relation and whether it is declared.
func (s Schema) Arity(name string) (int, bool) {
	ar, ok := s[name]
	return ar, ok
}

// Covers reports whether the fact is over this schema: its relation is
// declared and the arity matches.
func (s Schema) Covers(f Fact) bool {
	ar, ok := s[f.Rel()]
	return ok && ar == f.Arity()
}

// Union returns a schema declaring the relations of both operands.
// Conflicting arities are an error.
func (s Schema) Union(t Schema) (Schema, error) {
	u := s.Clone()
	for name, ar := range t {
		if err := u.Declare(name, ar); err != nil {
			return nil, err
		}
	}
	return u, nil
}

// Minus returns a schema with the relations of s that are not in t.
func (s Schema) Minus(t Schema) Schema {
	u := make(Schema)
	for name, ar := range s {
		if !t.Has(name) {
			u[name] = ar
		}
	}
	return u
}

// DisjointNames reports whether the two schemas share no relation name.
func (s Schema) DisjointNames(t Schema) bool {
	for name := range s {
		if t.Has(name) {
			return false
		}
	}
	return true
}

// Equal reports whether both schemas declare exactly the same relations
// at the same arities.
func (s Schema) Equal(t Schema) bool {
	if len(s) != len(t) {
		return false
	}
	for name, ar := range s {
		if tar, ok := t[name]; !ok || tar != ar {
			return false
		}
	}
	return true
}

// Names returns the declared relation names in sorted order.
func (s Schema) Names() []string {
	names := make([]string, 0, len(s))
	for name := range s {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Clone returns an independent copy of the schema.
func (s Schema) Clone() Schema {
	c := make(Schema, len(s))
	for name, ar := range s {
		c[name] = ar
	}
	return c
}

// String renders the schema as "name/arity" pairs in sorted order.
func (s Schema) String() string {
	names := s.Names()
	out := ""
	for i, name := range names {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("%s/%d", name, s[name])
	}
	return "{" + out + "}"
}

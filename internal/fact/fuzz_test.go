package fact

import "testing"

// FuzzParseFact checks the fact parser never panics and that every
// accepted fact survives a print/parse round trip.
func FuzzParseFact(f *testing.F) {
	for _, seed := range []string{
		"E(a,b)", "R(x)", `T("quoted value", y)`, "E(a,", "E", "", "E()",
		"Move(n1,n2)", `R("\")`, "E(a,b) trailing",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		fc, err := ParseFact(s)
		if err != nil {
			return
		}
		back, err := ParseFact(fc.String())
		if err != nil {
			t.Fatalf("accepted fact %q prints unparseable form %q: %v", s, fc.String(), err)
		}
		if !back.Equal(fc) {
			t.Fatalf("round trip changed fact: %v vs %v", fc, back)
		}
	})
}

// FuzzParseInstance checks the instance parser never panics and that
// parsing is idempotent through the printed form.
func FuzzParseInstance(f *testing.F) {
	for _, seed := range []string{
		"E(a,b)\nE(b,c)", "# comment\nR(x), S(y)", "", "E(a", "%%%",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		i, err := ParseInstance(s)
		if err != nil {
			return
		}
		printed := i.String()
		back, err := ParseInstance(printed[1 : len(printed)-1])
		if err != nil {
			t.Fatalf("accepted instance prints unparseable form %q: %v", printed, err)
		}
		if !back.Equal(i) {
			t.Fatalf("round trip changed instance: %v vs %v", i, back)
		}
	})
}

package fact

import (
	"encoding/binary"
	"strings"
)

// Fact is a ground atom R(d1, ..., dk): a relation name applied to a
// tuple of domain values. Facts are immutable once created; all
// operations that appear to modify a fact return a fresh one.
//
// Internally a fact holds only interned symbol IDs (see intern.go):
// the relation name and every argument live in the process-wide
// symbol table, so equality is integer comparison and the engines can
// join and deduplicate on packed ID tuples without ever rebuilding
// strings.
type Fact struct {
	rel  ID
	args []ID
}

// New creates the fact rel(args...). The relation name must be nonempty
// and, matching the paper's convention (Section 2), the arity must be at
// least one: nullary facts are not representable.
func New(rel string, args ...Value) Fact {
	if rel == "" {
		panic("fact: empty relation name")
	}
	if len(args) == 0 {
		panic("fact: nullary facts are not supported (arity must be >= 1)")
	}
	ids := make([]ID, len(args))
	for i, v := range args {
		ids[i] = Intern(v)
	}
	return Fact{rel: InternString(rel), args: ids}
}

// FromTuple creates the fact rel(t...) sharing no storage with t.
func FromTuple(rel string, t Tuple) Fact {
	return New(rel, t...)
}

// FromIDs creates a fact from already-interned symbols, copying args.
// This is the engines' constructor: deriving a fact from bound IDs
// performs no string work at all.
func FromIDs(rel ID, args []ID) Fact {
	ids := make([]ID, len(args))
	copy(ids, args)
	return Fact{rel: rel, args: ids}
}

// Rel returns the relation name of the fact.
func (f Fact) Rel() string { return symbols.lookup(f.rel) }

// RelID returns the interned relation name.
func (f Fact) RelID() ID { return f.rel }

// Arity returns the number of arguments.
func (f Fact) Arity() int { return len(f.args) }

// Arg returns the i-th argument (0-based).
func (f Fact) Arg(i int) Value { return Value(symbols.lookup(f.args[i])) }

// ArgID returns the i-th argument's interned symbol.
func (f Fact) ArgID(i int) ID { return f.args[i] }

// ArgIDs returns the fact's argument IDs. The slice is the fact's own
// backing storage — callers must treat it as read-only.
func (f Fact) ArgIDs() []ID { return f.args }

// Args returns a copy of the argument tuple.
func (f Fact) Args() Tuple {
	t := make(Tuple, len(f.args))
	for i, id := range f.args {
		t[i] = Value(symbols.lookup(id))
	}
	return t
}

// ADom returns the set of domain values occurring in the fact,
// written adom(f) in the paper.
func (f Fact) ADom() ValueSet {
	s := make(ValueSet, len(f.args))
	for _, id := range f.args {
		s.Add(Value(symbols.lookup(id)))
	}
	return s
}

// Key returns a canonical string encoding of the fact, usable as a map
// key. Distinct facts have distinct keys provided no value contains a
// NUL byte (which the parsers reject). The engines avoid Key on hot
// paths — packed ID keys (AppendPacked) carry the same identity with
// no string building — but the textual key remains the canonical
// process-independent encoding.
func (f Fact) Key() string {
	rel := symbols.lookup(f.rel)
	var b strings.Builder
	b.Grow(len(rel) + 8*len(f.args))
	b.WriteString(rel)
	for _, id := range f.args {
		b.WriteByte(0)
		b.WriteString(symbols.lookup(id))
	}
	return b.String()
}

// AppendPacked appends the fact's packed binary key — the relation ID
// followed by the argument IDs, 4 bytes little-endian each — to buf.
// Distinct facts of the same arity have distinct packed keys; facts of
// different arities differ in key length. Packed keys are valid only
// within the current process (see AppendPackedIDs).
func (f Fact) AppendPacked(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(f.rel))
	for _, id := range f.args {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(id))
	}
	return buf
}

// PackedKey returns the packed binary key as a string, for use as a
// map key. Process-local, like AppendPacked.
func (f Fact) PackedKey() string {
	return string(f.AppendPacked(make([]byte, 0, 4+4*len(f.args))))
}

// Equal reports whether two facts have the same relation name and arguments.
func (f Fact) Equal(g Fact) bool {
	if f.rel != g.rel || len(f.args) != len(g.args) {
		return false
	}
	for i := range f.args {
		if f.args[i] != g.args[i] {
			return false
		}
	}
	return true
}

// compareSyms orders two interned symbols by their string values.
func compareSyms(a, b ID) int {
	if a == b {
		return 0
	}
	return strings.Compare(symbols.lookup(a), symbols.lookup(b))
}

// Compare orders facts by relation name, then by argument tuple
// (length first, then lexicographically). The order is over the
// underlying strings, not the interned IDs, so it is identical across
// processes — every deterministic artifact sorts with it.
func (f Fact) Compare(g Fact) int {
	if c := compareSyms(f.rel, g.rel); c != 0 {
		return c
	}
	if len(f.args) != len(g.args) {
		if len(f.args) < len(g.args) {
			return -1
		}
		return 1
	}
	for i := range f.args {
		if c := compareSyms(f.args[i], g.args[i]); c != 0 {
			return c
		}
	}
	return 0
}

// Map returns the fact obtained by applying h to every argument, i.e.
// R(h(d1), ..., h(dk)). Values not present in h map to themselves.
func (f Fact) Map(h map[Value]Value) Fact {
	args := make([]ID, len(f.args))
	for i, id := range f.args {
		if w, ok := h[Value(symbols.lookup(id))]; ok {
			args[i] = Intern(w)
		} else {
			args[i] = id
		}
	}
	return Fact{rel: f.rel, args: args}
}

// String renders the fact in the conventional syntax, e.g. "E(a,b)".
// Built directly rather than via fmt: rendering is on calmd's query
// hot path (a cold epoch renders every requested fact once).
func (f Fact) String() string {
	rel := symbols.lookup(f.rel)
	var b strings.Builder
	b.Grow(len(rel) + 2 + 12*len(f.args))
	b.WriteString(rel)
	b.WriteByte('(')
	for i, id := range f.args {
		if i > 0 {
			b.WriteByte(',')
		}
		v := Value(symbols.lookup(id))
		if isBareValue(v) {
			b.WriteString(string(v))
		} else {
			b.WriteString(QuoteValue(v))
		}
	}
	b.WriteByte(')')
	return b.String()
}

package fact

import (
	"fmt"
	"strings"
)

// Fact is a ground atom R(d1, ..., dk): a relation name applied to a
// tuple of domain values. Facts are immutable once created; all
// operations that appear to modify a fact return a fresh one.
type Fact struct {
	rel  string
	args Tuple
}

// New creates the fact rel(args...). The relation name must be nonempty
// and, matching the paper's convention (Section 2), the arity must be at
// least one: nullary facts are not representable.
func New(rel string, args ...Value) Fact {
	if rel == "" {
		panic("fact: empty relation name")
	}
	if len(args) == 0 {
		panic("fact: nullary facts are not supported (arity must be >= 1)")
	}
	t := make(Tuple, len(args))
	copy(t, args)
	return Fact{rel: rel, args: t}
}

// FromTuple creates the fact rel(t...) sharing no storage with t.
func FromTuple(rel string, t Tuple) Fact {
	return New(rel, t...)
}

// Rel returns the relation name of the fact.
func (f Fact) Rel() string { return f.rel }

// Arity returns the number of arguments.
func (f Fact) Arity() int { return len(f.args) }

// Arg returns the i-th argument (0-based).
func (f Fact) Arg(i int) Value { return f.args[i] }

// Args returns a copy of the argument tuple.
func (f Fact) Args() Tuple { return f.args.Clone() }

// ADom returns the set of domain values occurring in the fact,
// written adom(f) in the paper.
func (f Fact) ADom() ValueSet {
	s := make(ValueSet, len(f.args))
	for _, v := range f.args {
		s.Add(v)
	}
	return s
}

// Key returns a canonical string encoding of the fact, usable as a map
// key. Distinct facts have distinct keys provided no value contains a
// NUL byte (which the parsers reject).
func (f Fact) Key() string {
	var b strings.Builder
	b.Grow(len(f.rel) + 8*len(f.args))
	b.WriteString(f.rel)
	for _, v := range f.args {
		b.WriteByte(0)
		b.WriteString(string(v))
	}
	return b.String()
}

// Equal reports whether two facts have the same relation name and arguments.
func (f Fact) Equal(g Fact) bool {
	return f.rel == g.rel && f.args.Equal(g.args)
}

// Compare orders facts by relation name, then by argument tuple.
func (f Fact) Compare(g Fact) int {
	if f.rel != g.rel {
		if f.rel < g.rel {
			return -1
		}
		return 1
	}
	return f.args.Compare(g.args)
}

// Map returns the fact obtained by applying h to every argument, i.e.
// R(h(d1), ..., h(dk)). Values not present in h map to themselves.
func (f Fact) Map(h map[Value]Value) Fact {
	args := make(Tuple, len(f.args))
	for i, v := range f.args {
		if w, ok := h[v]; ok {
			args[i] = w
		} else {
			args[i] = v
		}
	}
	return Fact{rel: f.rel, args: args}
}

// String renders the fact in the conventional syntax, e.g. "E(a,b)".
func (f Fact) String() string {
	return fmt.Sprintf("%s(%s)", f.rel, f.args.String())
}

// Benchmark harness: one benchmark per figure of the paper plus the
// performance ablations recorded in EXPERIMENTS.md. Run with
//
//	go test -bench=. -benchmem
//
// BenchmarkFig1Hierarchy and BenchmarkFig2Fragments regenerate the
// separation/inclusion matrices; the remaining benchmarks measure the
// engineering ablations (naive vs semi-naive fixpoints, strategy
// message complexity, network scaling, and the alternating fixpoint).
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/datalog"
	"repro/internal/fact"
	"repro/internal/generate"
	"repro/internal/monotone"
	"repro/internal/obs"
	"repro/internal/queries"
	"repro/internal/transducer"
)

// BenchmarkFig1Hierarchy re-checks the canonical separation witnesses
// of Theorem 3.1 (the edges of Figure 1) per iteration.
func BenchmarkFig1Hierarchy(b *testing.B) {
	type pair struct {
		q    monotone.Query
		i, j *fact.Instance
	}
	star2 := generate.Star("c", "s", 2)
	witnesses := []pair{
		{queries.NoLoop(), fact.MustParseInstance(`E(a,b)`), fact.MustParseInstance(`E(a,a)`)},
		{queries.ComplementTC(), fact.MustParseInstance(`E(a,a) E(b,b)`), fact.MustParseInstance(`E(a,c) E(c,b)`)},
		{queries.TrianglesUnlessTwoDisjoint(), generate.Triangle("a", "b", "c"), generate.Triangle("x", "y", "z")},
		{queries.KClique(3), generate.Clique("v", 2), fact.MustParseInstance(`E(w,v0) E(w,v1)`)},
		{queries.KStar(3), star2, fact.MustParseInstance(`E(c,extra)`)},
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		for _, w := range witnesses {
			viol, err := monotone.CheckPair(w.q, w.i, w.j)
			if err != nil {
				b.Fatal(err)
			}
			if viol == nil {
				b.Fatalf("witness for %s vanished", w.q.Name())
			}
		}
	}
}

// BenchmarkFig2Fragments classifies the paper's programs into the
// Datalog fragments of Figure 2 per iteration.
func BenchmarkFig2Fragments(b *testing.B) {
	progs := []*datalog.Program{
		queries.TCProgram(),
		queries.ComplementTCProgram(),
		queries.NoLoopProgram(),
		queries.Example51P1(),
		queries.Example51P2(),
		queries.KCliqueProgram(3),
		queries.KStarProgram(3),
		queries.DuplicateProgram(3),
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		for _, p := range progs {
			if p.Classify() == datalog.FragUnstratifiable {
				b.Fatal("unexpected unstratifiable program")
			}
		}
	}
}

// evalModes enumerates the fixpoint strategies compared by the mode
// ablation benchmarks, in reporting order. Parallel mode uses
// GOMAXPROCS workers; run with -cpu 4 (or higher) to measure the
// multi-core speedup.
var evalModes = []struct {
	name string
	mode datalog.EvalMode
}{
	{"naive", datalog.Naive},
	{"seminaive", datalog.SemiNaive},
	{"parallel", datalog.Parallel},
}

// BenchmarkNaiveVsSemiNaive is the PERF.1 ablation: transitive closure
// over chains and random graphs under all three fixpoint strategies.
func BenchmarkNaiveVsSemiNaive(b *testing.B) {
	tc := queries.TCProgram()
	inputs := []struct {
		name string
		in   *fact.Instance
	}{
		{"chain32", generate.Path("v", 32)},
		{"cycle24", generate.Cycle("v", 24)},
		{"random48", generate.RandomGraph(newRand(1), "v", 16, 48)},
		{"grid5x5", generate.Grid("g", 5, 5)},
		{"tournament10", generate.Tournament(newRand(2), "v", 10)},
	}
	for _, c := range inputs {
		for _, m := range evalModes {
			b.Run(c.name+"/"+m.name, func(b *testing.B) {
				// One instrumented warm-up run collects the work profile
				// (deterministic per configuration); the timed loop below
				// stays uninstrumented so ns/op measures the bare engine.
				reg := obs.NewRegistry()
				if _, err := tc.Fixpoint(c.in, datalog.FixpointOptions{Mode: m.mode, Reg: reg}); err != nil {
					b.Fatal(err)
				}
				snap := reg.Snapshot()
				b.ResetTimer()
				for n := 0; n < b.N; n++ {
					if _, err := tc.Fixpoint(c.in, datalog.FixpointOptions{Mode: m.mode}); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(snap.Counters[obs.DlDerivations]), "derivations/op")
				b.ReportMetric(float64(snap.Counters[obs.DlDuplicates]), "duplicates/op")
				b.ReportMetric(float64(snap.Counters[obs.DlRounds]), "rounds/op")
			})
		}
	}
}

// BenchmarkParallelTC is the PERF.4 ablation: transitive closure on
// larger graphs under the incremental strategies, where per-round
// deltas are big enough for the parallel engine's fan-out to matter.
// Naive mode is omitted (its quadratic re-derivation dominates and
// PERF.1 already records it).
func BenchmarkParallelTC(b *testing.B) {
	tc := queries.TCProgram()
	inputs := []struct {
		name string
		in   *fact.Instance
	}{
		{"chain96", generate.Path("v", 96)},
		{"random240", generate.RandomGraph(newRand(3), "v", 60, 240)},
		{"grid8x8", generate.Grid("g", 8, 8)},
	}
	for _, c := range inputs {
		for _, m := range evalModes {
			if m.mode == datalog.Naive {
				continue
			}
			b.Run(c.name+"/"+m.name, func(b *testing.B) {
				for n := 0; n < b.N; n++ {
					if _, err := tc.Fixpoint(c.in, datalog.FixpointOptions{Mode: m.mode}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkStrategyMessages is the PERF.2 ablation: message and
// transition counts of the three coordination-free strategies on the
// same workload (reported as custom metrics).
func BenchmarkStrategyMessages(b *testing.B) {
	net := transducer.MustNetwork("n1", "n2", "n3")
	in := generate.Cycle("v", 6)
	cases := []struct {
		name string
		s    core.Strategy
		q    monotone.Query
		pol  transducer.Policy
	}{
		{"broadcast/TC", core.Broadcast, queries.TC(), transducer.HashPolicy(net)},
		{"absence/NoLoop", core.Absence, queries.NoLoop(), transducer.HashPolicy(net)},
		{"domainreq/QTC", core.DomainRequest, queries.ComplementTC(), transducer.DomainGuided(transducer.HashAssignment(net))},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			// Instrumented warm-up run for the quiescence tick; the timed
			// loop stays uninstrumented.
			reg := obs.NewRegistry()
			if _, err := core.ComputeRun(c.s, c.q, net, c.pol, in, core.RunConfig{Reg: reg}); err != nil {
				b.Fatal(err)
			}
			tick := reg.Snapshot().Gauges[obs.SimQuiescenceTick]
			b.ResetTimer()
			var msgs, trans int
			for n := 0; n < b.N; n++ {
				res, err := core.Compute(c.s, c.q, net, c.pol, in, 0)
				if err != nil {
					b.Fatal(err)
				}
				msgs = res.Metrics.MessagesSent
				trans = res.Metrics.Transitions
			}
			b.ReportMetric(float64(msgs), "msgs/run")
			b.ReportMetric(float64(trans), "transitions/run")
			if tick > 0 {
				b.ReportMetric(float64(msgs)/float64(tick), "msgs/tick")
			}
		})
	}
}

// BenchmarkNetworkScaling measures the domain-request strategy as the
// network grows (PERF.2).
func BenchmarkNetworkScaling(b *testing.B) {
	in := generate.Cycle("v", 6)
	q := queries.ComplementTC()
	for _, size := range []int{1, 2, 4, 6} {
		nodes := make([]transducer.NodeID, size)
		for k := range nodes {
			nodes[k] = transducer.NodeID(fmt.Sprintf("n%d", k))
		}
		net := transducer.MustNetwork(nodes...)
		pol := transducer.DomainGuided(transducer.HashAssignment(net))
		b.Run(fmt.Sprintf("nodes%d", size), func(b *testing.B) {
			var msgs int
			for n := 0; n < b.N; n++ {
				res, err := core.Compute(core.DomainRequest, q, net, pol, in, 0)
				if err != nil {
					b.Fatal(err)
				}
				msgs = res.Metrics.MessagesSent
			}
			b.ReportMetric(float64(msgs), "msgs/run")
		})
	}
}

// BenchmarkInputScaling measures the domain-request strategy as the
// input grows on a fixed two-node network (PERF.2).
func BenchmarkInputScaling(b *testing.B) {
	net := transducer.MustNetwork("n1", "n2")
	pol := transducer.DomainGuided(transducer.HashAssignment(net))
	q := queries.ComplementTC()
	for _, size := range []int{4, 8, 12} {
		in := generate.Cycle("v", size)
		b.Run(fmt.Sprintf("edges%d", size), func(b *testing.B) {
			var msgs int
			for n := 0; n < b.N; n++ {
				res, err := core.Compute(core.DomainRequest, q, net, pol, in, 0)
				if err != nil {
					b.Fatal(err)
				}
				msgs = res.Metrics.MessagesSent
			}
			b.ReportMetric(float64(msgs), "msgs/run")
		})
	}
}

// BenchmarkExplore measures the exhaustive schedule explorer (used by
// the safety tests) at increasing depth.
func BenchmarkExplore(b *testing.B) {
	net := transducer.MustNetwork("n1", "n2")
	in := fact.MustParseInstance(`E(a,b) E(b,a)`)
	q := queries.TC()
	want, err := q.Eval(in)
	if err != nil {
		b.Fatal(err)
	}
	tr := core.MustBuild(core.Broadcast, q)
	for _, depth := range []int{2, 3, 4} {
		b.Run(fmt.Sprintf("depth%d", depth), func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				v, err := transducer.Explore(net, tr, transducer.HashPolicy(net), core.Broadcast.RequiredModel(), in, want, depth)
				if err != nil {
					b.Fatal(err)
				}
				if v != nil {
					b.Fatal("unexpected violation")
				}
			}
		})
	}
}

// winMoveGame builds the game graph used by the win-move benchmarks: a
// chain of moves with some back-edges, mixing won, lost and drawn
// positions.
func winMoveGame(size int) *fact.Instance {
	game := fact.NewInstance()
	for k := 0; k < size; k++ {
		game.Add(fact.New("Move",
			fact.Value(fmt.Sprintf("p%d", k)),
			fact.Value(fmt.Sprintf("p%d", k+1))))
		if k%3 == 0 {
			game.Add(fact.New("Move",
				fact.Value(fmt.Sprintf("p%d", k+1)),
				fact.Value(fmt.Sprintf("p%d", k))))
		}
	}
	return game
}

// BenchmarkWinMove measures the alternating-fixpoint well-founded
// evaluation of win-move on growing game graphs (PERF.3).
func BenchmarkWinMove(b *testing.B) {
	for _, size := range []int{8, 16, 32} {
		game := winMoveGame(size)
		b.Run(fmt.Sprintf("positions%d", size+1), func(b *testing.B) {
			prog := queries.WinMoveProgram()
			for n := 0; n < b.N; n++ {
				if _, err := queries.WellFounded(prog, game); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWFSDirectVsDoubled compares the direct alternating fixpoint
// with the doubled-program route on the same game graphs (PERF.3b).
func BenchmarkWFSDirectVsDoubled(b *testing.B) {
	prog := queries.WinMoveProgram()
	game := winMoveGame(16)
	b.Run("direct", func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			if _, err := queries.WellFounded(prog, game); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("doubled", func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			if _, err := queries.WellFoundedViaDoubled(prog, game); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWFSModes compares the three fixpoint modes inside the
// doubled-program route to the well-founded semantics of win-move
// (the doubling workload of PERF.4): the doubled program is stratified,
// so every EvalMode applies directly.
func BenchmarkWFSModes(b *testing.B) {
	prog := queries.WinMoveProgram()
	for _, size := range []int{16, 32} {
		game := winMoveGame(size)
		for _, m := range evalModes {
			b.Run(fmt.Sprintf("positions%d/%s", size+1, m.name), func(b *testing.B) {
				for n := 0; n < b.N; n++ {
					opts := datalog.FixpointOptions{Mode: m.mode}
					if _, err := queries.WellFoundedViaDoubledOpts(prog, game, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkCoordinationFreeWitness measures the Definition 3 check
// (ideal policy + heartbeat prefix) for each strategy.
func BenchmarkCoordinationFreeWitness(b *testing.B) {
	net := transducer.MustNetwork("n1", "n2")
	in := generate.Cycle("v", 4)
	cases := []struct {
		name string
		s    core.Strategy
		q    monotone.Query
	}{
		{"broadcast/TC", core.Broadcast, queries.TC()},
		{"absence/NoLoop", core.Absence, queries.NoLoop()},
		{"domainreq/QTC", core.DomainRequest, queries.ComplementTC()},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				ok, err := core.VerifyCoordinationFree(c.s, c.q, net, in)
				if err != nil {
					b.Fatal(err)
				}
				if !ok {
					b.Fatal("witness lost")
				}
			}
		})
	}
}

// BenchmarkDatalogVsNative compares the Datalog engine against the
// hand-written native evaluators on the same queries.
func BenchmarkDatalogVsNative(b *testing.B) {
	in := generate.RandomGraph(newRand(2), "v", 10, 25)
	pairs := []struct {
		name   string
		native monotone.Query
		dl     monotone.Query
	}{
		{"TC", queries.TC(), queries.TCDatalog()},
		{"QTC", queries.ComplementTC(), queries.ComplementTCDatalog()},
		{"Q3clique", queries.KClique(3), queries.KCliqueDatalog(3)},
	}
	for _, p := range pairs {
		b.Run(p.name+"/native", func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				if _, err := p.native.Eval(in); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(p.name+"/datalog", func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				if _, err := p.dl.Eval(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Package repro is the root of a reproduction of "Weaker Forms of
// Monotonicity for Declarative Networking: a More Fine-grained Answer
// to the CALM-conjecture" (Ameloot, Ketsman, Neven, Zinn; PODS 2014).
//
// The public API lives in the calm subpackage; the experiment suite
// regenerating the paper's Figure 1 and Figure 2 lives in
// figures_test.go and bench_test.go next to this file, and can also be
// run through cmd/experiments.
package repro

// Command calmsim runs one of the paper's coordination-free evaluation
// strategies on a simulated relational transducer network and compares
// the distributed answer with a centralized evaluation. It prints the
// per-node input fragments, the run metrics (transitions, messages),
// the network output, and optionally the Definition 3
// coordination-freeness witness.
//
// Usage:
//
//	calmsim -query winmove -strategy domainreq -nodes 3
//	calmsim -query qtc -strategy domainreq -nodes 4 -input graph.facts
//	calmsim -query tc -strategy broadcast -policy hash -verify
//	calmsim -query tc -strategy broadcast -faults "dup=0.3,delay=0.5:4,crash=n2@9"
//	calmsim -query noloop -strategy absence -faults random -seed 7
//	calmsim -query qtc -strategy domainreq -seeds 500
//	calmsim -query tc -strategy broadcast -trace run.jsonl -metrics metrics.json
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/admin"
	"repro/internal/core"
	"repro/internal/fact"
	"repro/internal/generate"
	"repro/internal/monotone"
	"repro/internal/obs"
	"repro/internal/queries"
	"repro/internal/transducer"
)

func main() {
	var (
		queryName = flag.String("query", "tc", "query: tc | qtc | noloop | winmove | winmove3v | triangles | clique:K | star:K | duplicate:J")
		strat     = flag.String("strategy", "broadcast", "strategy: broadcast | absence | domainreq")
		nodes     = flag.Int("nodes", 3, "number of network nodes")
		policy    = flag.String("policy", "", "policy: hash | firstattr | guided | onenode (default: guided for domainreq, hash otherwise)")
		inputPath = flag.String("input", "", "input instance file (default: a built-in demo instance)")
		seed      = flag.Int64("seed", 0, "seed for every random choice (random scheduler prefix, -faults random, -seeds sweep base); 0 means no random prefix")
		steps     = flag.Int("steps", 25, "length of the random scheduler prefix enabled by -seed")
		faults    = flag.String("faults", "", `fault plan between send and buffer: "random" (seeded via -seed), or a spec like "dup=0.2,delay=0.25:6,stall=n2@3-8,crash=n3@10,part=2-6:n1|n2"`)
		seeds     = flag.Int("seeds", 0, "when > 0, run the adversarial schedule explorer with this many seeded fault schedules (plus starvation and greedy adversaries)")
		verify    = flag.Bool("verify", false, "also check the Definition 3 coordination-freeness witness")
		explore   = flag.Int("explore", 0, "when > 0, exhaustively explore all schedules to this depth and check output safety")
		tracePath = flag.String("trace", "", `write structured JSONL events (sim.* transitions/faults, explore.* schedules) to this file ("-" = stdout)`)
		metrics   = flag.String("metrics", "", `write run metrics (sim.* / explore.* counters) as JSON to this file ("-" = stdout)`)
		pprofAddr = flag.String("pprof", "", "serve the admin endpoint (/metrics /debug/pprof) on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	q, demo, err := lookupQuery(*queryName)
	if err != nil {
		fatal(err)
	}
	s, err := lookupStrategy(*strat)
	if err != nil {
		fatal(err)
	}

	input := demo
	if *inputPath != "" {
		data, err := os.ReadFile(*inputPath)
		if err != nil {
			fatal(err)
		}
		input, err = fact.ParseInstance(string(data))
		if err != nil {
			fatal(err)
		}
	}

	ids := make([]transducer.NodeID, *nodes)
	for k := range ids {
		ids[k] = transducer.NodeID(fmt.Sprintf("n%d", k+1))
	}
	net, err := transducer.NewNetwork(ids...)
	if err != nil {
		fatal(err)
	}

	polName := *policy
	if polName == "" {
		if s == core.DomainRequest {
			polName = "guided"
		} else {
			polName = "hash"
		}
	}
	pol, err := lookupPolicy(polName, net)
	if err != nil {
		fatal(err)
	}

	var plan *transducer.FaultPlan
	if *faults != "" {
		if *faults == "random" {
			plan = transducer.RandomFaultPlan(net, *seed, transducer.DefaultFaultConfig())
		} else {
			plan, err = transducer.ParseFaultPlan(*faults, *seed)
			if err != nil {
				fatal(err)
			}
		}
	}

	fmt.Printf("query    : %s\n", q.Name())
	fmt.Printf("strategy : %v (class %v)\n", s, s.Class())
	fmt.Printf("network  : %v\n", net)
	fmt.Printf("policy   : %s\n", polName)
	if plan != nil {
		fmt.Printf("faults   : %v (seed %d)\n", plan, *seed)
	}
	fmt.Printf("input    : %v\n\n", input)

	frags := transducer.Dist(pol, net, input)
	for _, x := range net {
		fmt.Printf("fragment at %s: %v\n", x, frags[x])
	}

	var reg *obs.Registry
	if *metrics != "" || *pprofAddr != "" {
		reg = obs.NewRegistry()
	}
	startAdmin(*pprofAddr, reg)
	sink, closeSink := openTrace(*tracePath)

	cfg := core.RunConfig{Plan: plan, Sink: sink, Reg: reg}
	if plan == nil && *seed != 0 {
		cfg.Seed, cfg.RandomSteps = *seed, *steps
	}
	res, err := core.ComputeRun(s, q, net, pol, input, cfg)
	if err != nil {
		fatal(err)
	}
	want, err := q.Eval(input)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("\ntransitions: %d (heartbeats %d), messages sent: %d, delivered: %d\n",
		res.Metrics.Transitions, res.Metrics.Heartbeats, res.Metrics.MessagesSent, res.Metrics.MessagesDelivered)
	if plan != nil {
		fmt.Printf("faults: duplicated %d, delayed %d, dropped %d, retransmitted %d, crashes %d, stalled steps %d\n",
			res.Metrics.MessagesDuplicated, res.Metrics.MessagesDelayed, res.Metrics.MessagesDropped,
			res.Metrics.MessagesRetransmitted, res.Metrics.Crashes, res.Metrics.StalledSteps)
	}
	fmt.Printf("distributed output: %v\n", res.Output)
	fmt.Printf("central output    : %v\n", want)
	if res.Output.Equal(want) {
		fmt.Println("CONSISTENT: distributed run equals centralized evaluation")
	} else {
		fmt.Println("INCONSISTENT: the query is outside the strategy's class, or a bug")
	}

	if *verify {
		ok, err := core.VerifyCoordinationFree(s, q, net, input)
		if err != nil {
			fatal(err)
		}
		if ok {
			fmt.Println("coordination-free: heartbeat-only witness found under the ideal policy")
		} else {
			fmt.Println("coordination-freeness witness NOT found")
		}
	}

	if *seeds > 0 {
		opts := transducer.ExploreOptions{Seeds: *seeds, Faults: core.FaultConfigFor(s), Sink: sink}
		if *seed != 0 {
			opts.BaseSeed = *seed
		}
		v, stats, err := core.ExploreStrategy(s, q, net, pol, input, opts)
		if err != nil {
			fatal(err)
		}
		stats.Publish(reg)
		if v == nil {
			fmt.Printf("explore: %d schedules (%d transitions) clean — starvation, greedy adversaries, %d seeded fault plans\n",
				stats.Schedules, stats.Transitions, *seeds)
		} else {
			fmt.Printf("explore: VIOLATION after %d schedules: %v\n", stats.Schedules, v)
		}
	}

	if *explore > 0 {
		tr, err := core.Build(s, q)
		if err != nil {
			fatal(err)
		}
		v, err := transducer.Explore(net, tr, pol, s.RequiredModel(), input, want, *explore)
		if err != nil {
			fatal(err)
		}
		if v == nil {
			fmt.Printf("explore: all schedules to depth %d keep the output inside Q(I)\n", *explore)
		} else {
			fmt.Printf("explore: UNSAFE schedule found: %v\n", v)
		}
	}

	closeSink()
	writeMetrics(reg, *metrics)
}

// openTrace opens the JSONL event sink ("" = disabled, "-" = stdout).
func openTrace(path string) (*obs.Sink, func()) {
	switch path {
	case "":
		return nil, func() {}
	case "-":
		sink := obs.NewSink(os.Stdout)
		return sink, func() { checkSink(sink) }
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	sink := obs.NewSink(f)
	return sink, func() {
		checkSink(sink)
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
}

func checkSink(sink *obs.Sink) {
	if err := sink.Err(); err != nil {
		fatal(fmt.Errorf("writing trace: %w", err))
	}
}

// writeMetrics dumps the registry as JSON ("" = disabled, "-" = stdout).
func writeMetrics(reg *obs.Registry, path string) {
	if reg == nil || path == "" {
		return
	}
	if path == "-" {
		if err := reg.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := reg.WriteJSON(f); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
}

func lookupQuery(name string) (monotone.Query, *fact.Instance, error) {
	entry, err := queries.Lookup(name)
	if err != nil {
		return nil, nil, err
	}
	in := entry.Query.InputSchema()
	var demo *fact.Instance
	switch {
	case in.Has("E"):
		demo = fact.MustParseInstance(`E(a,b) E(b,c) E(c,a) E(d,d) E(d,e)`)
	case in.Has("Move"):
		demo = fact.MustParseInstance(`Move(a,b) Move(b,a) Move(b,c) Move(d,e)`)
	default:
		// Synthesize a small deterministic instance over the schema
		// (e.g. the R1..Rj schema of the duplicate queries).
		demo = generate.Random(rand.New(rand.NewSource(1)), in, generate.Values("v", 4), 6)
	}
	return entry.Query, demo, nil
}

func lookupStrategy(name string) (core.Strategy, error) {
	switch name {
	case "broadcast":
		return core.Broadcast, nil
	case "absence":
		return core.Absence, nil
	case "domainreq":
		return core.DomainRequest, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q", name)
	}
}

func lookupPolicy(name string, net transducer.Network) (transducer.Policy, error) {
	switch name {
	case "hash":
		return transducer.HashPolicy(net), nil
	case "firstattr":
		return transducer.FirstAttrPolicy(net), nil
	case "guided":
		return transducer.DomainGuided(transducer.HashAssignment(net)), nil
	case "onenode":
		return transducer.AllToNode(net[0]), nil
	default:
		return nil, fmt.Errorf("unknown policy %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "calmsim: %v\n", err)
	os.Exit(1)
}

// startAdmin serves the shared admin endpoint (/metrics /debug/pprof)
// in the background ("" = disabled) — the same routes calmd's -admin
// exposes, so one curl recipe profiles every binary in the repo.
func startAdmin(addr string, reg *obs.Registry) {
	if addr == "" {
		return
	}
	adm, err := admin.Start(addr, admin.Options{Reg: reg})
	if err != nil {
		fmt.Fprintf(os.Stderr, "calmsim: admin: %v\n", err)
		return
	}
	fmt.Fprintf(os.Stderr, "calmsim: admin on http://%s\n", adm.Addr())
}

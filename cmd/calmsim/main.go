// Command calmsim runs one of the paper's coordination-free evaluation
// strategies on a simulated relational transducer network and compares
// the distributed answer with a centralized evaluation. It prints the
// per-node input fragments, the run metrics (transitions, messages),
// the network output, and optionally the Definition 3
// coordination-freeness witness.
//
// Usage:
//
//	calmsim -query winmove -strategy domainreq -nodes 3
//	calmsim -query qtc -strategy domainreq -nodes 4 -input graph.facts
//	calmsim -query tc -strategy broadcast -policy hash -verify
//	calmsim -query tc -strategy broadcast -faults "dup=0.3,delay=0.5:4,crash=n2@9"
//	calmsim -query noloop -strategy absence -faults random -seed 7
//	calmsim -query qtc -strategy domainreq -seeds 500
//	calmsim -query tc -strategy broadcast -trace run.jsonl -metrics metrics.json
//	calmsim -query tc -strategy gossip -topology ring -nodes 100 -routing neighbors
//	calmsim -query tc -strategy gossip -topology powerlaw -nodes 1000 -routing neighbors -seeds 20
//	calmsim -query tc -strategy gossip -topology wan -nodes 256 -routing neighbors -faults random -seed 3
//
// With -topology the run switches to the event-driven large-network
// engine (internal/netsim): nodes are generated from the seeded
// topology catalog (ring | star | tree | powerlaw | wan), -nodes
// scales to 10^2–10^4, and -routing picks between broadcast links and
// topology-neighbor links (neighbors needs the gossip strategy to
// converge, since facts then travel hop by hop).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/admin"
	"repro/internal/core"
	"repro/internal/fact"
	"repro/internal/generate"
	"repro/internal/monotone"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/queries"
	"repro/internal/transducer"
)

func main() {
	var (
		queryName = flag.String("query", "tc", "query: tc | qtc | noloop | winmove | winmove3v | triangles | clique:K | star:K | duplicate:J")
		strat     = flag.String("strategy", "broadcast", "strategy: broadcast | gossip | absence | domainreq")
		nodes     = flag.Int("nodes", 3, "number of network nodes")
		topology  = flag.String("topology", "", "generate the network from the topology catalog: ring | star | tree | powerlaw | wan (enables the event-driven engine; seeded by -seed)")
		routing   = flag.String("routing", "broadcast", "message routing on a generated topology: broadcast | neighbors (neighbors wants -strategy gossip)")
		policy    = flag.String("policy", "", "policy: hash | firstattr | guided | onenode (default: guided for domainreq, hash otherwise)")
		inputPath = flag.String("input", "", "input instance file (default: a built-in demo instance)")
		seed      = flag.Int64("seed", 0, "seed for every random choice (random scheduler prefix, -faults random, -seeds sweep base); 0 means no random prefix")
		steps     = flag.Int("steps", 25, "length of the random scheduler prefix enabled by -seed")
		faults    = flag.String("faults", "", `fault plan between send and buffer: "random" (seeded via -seed), or a spec like "dup=0.2,delay=0.25:6,stall=n2@3-8,crash=n3@10,part=2-6:n1|n2"`)
		seeds     = flag.Int("seeds", 0, "when > 0, run the adversarial schedule explorer with this many seeded fault schedules (plus starvation and greedy adversaries)")
		verify    = flag.Bool("verify", false, "also check the Definition 3 coordination-freeness witness")
		explore   = flag.Int("explore", 0, "when > 0, exhaustively explore all schedules to this depth and check output safety")
		tracePath = flag.String("trace", "", `write structured JSONL events (sim.* transitions/faults, explore.* schedules) to this file ("-" = stdout)`)
		metrics   = flag.String("metrics", "", `write run metrics (sim.* / explore.* counters) as JSON to this file ("-" = stdout)`)
		pprofAddr = flag.String("pprof", "", "serve the admin endpoint (/metrics /debug/pprof) on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	q, demo, err := lookupQuery(*queryName)
	if err != nil {
		fatal(err)
	}
	s, err := lookupStrategy(*strat)
	if err != nil {
		fatal(err)
	}

	input := demo
	if *inputPath != "" {
		data, err := os.ReadFile(*inputPath)
		if err != nil {
			fatal(err)
		}
		input, err = fact.ParseInstance(string(data))
		if err != nil {
			fatal(err)
		}
	}

	net, topo, err := buildNetwork(*topology, *nodes, *seed)
	if err != nil {
		fatal(err)
	}
	route, err := netsim.ParseRouting(*routing)
	if err != nil {
		fatal(err)
	}

	polName := *policy
	if polName == "" {
		if s == core.DomainRequest {
			polName = "guided"
		} else {
			polName = "hash"
		}
	}
	pol, err := lookupPolicy(polName, net)
	if err != nil {
		fatal(err)
	}

	var plan *transducer.FaultPlan
	if *faults != "" {
		if *faults == "random" {
			plan = transducer.RandomFaultPlan(net, *seed, transducer.DefaultFaultConfig())
		} else {
			plan, err = transducer.ParseFaultPlan(*faults, *seed)
			if err != nil {
				fatal(err)
			}
		}
	}

	fmt.Printf("query    : %s\n", q.Name())
	fmt.Printf("strategy : %v (class %v)\n", s, s.Class())
	if topo != nil {
		fmt.Printf("topology : %v nodes=%d edges=%d clusters=%d routing=%v (seed %d)\n",
			topo.Kind, topo.Len(), topo.NumEdges(), topo.Clusters(), route, *seed)
	} else {
		fmt.Printf("network  : %v\n", net)
	}
	fmt.Printf("policy   : %s\n", polName)
	if plan != nil {
		fmt.Printf("faults   : %v (seed %d)\n", plan, *seed)
	}
	fmt.Printf("input    : %v\n\n", input)

	if len(net) <= 12 {
		frags := transducer.Dist(pol, net, input)
		for _, x := range net {
			fmt.Printf("fragment at %s: %v\n", x, frags[x])
		}
	}

	var reg *obs.Registry
	if *metrics != "" || *pprofAddr != "" {
		reg = obs.NewRegistry()
	}
	startAdmin(*pprofAddr, reg)
	sink, closeSink := openTrace(*tracePath)

	if topo != nil {
		runEventEngine(topo, route, s, q, net, pol, input, plan, sink, reg, *seed, *seeds)
		closeSink()
		writeMetrics(reg, *metrics)
		return
	}

	cfg := core.RunConfig{Plan: plan, Sink: sink, Reg: reg}
	if plan == nil && *seed != 0 {
		cfg.Seed, cfg.RandomSteps = *seed, *steps
	}
	res, err := core.ComputeRun(s, q, net, pol, input, cfg)
	if err != nil {
		fatal(err)
	}
	want, err := q.Eval(input)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("\ntransitions: %d (heartbeats %d), messages sent: %d, delivered: %d\n",
		res.Metrics.Transitions, res.Metrics.Heartbeats, res.Metrics.MessagesSent, res.Metrics.MessagesDelivered)
	if plan != nil {
		fmt.Printf("faults: duplicated %d, delayed %d, dropped %d, retransmitted %d, crashes %d, stalled steps %d\n",
			res.Metrics.MessagesDuplicated, res.Metrics.MessagesDelayed, res.Metrics.MessagesDropped,
			res.Metrics.MessagesRetransmitted, res.Metrics.Crashes, res.Metrics.StalledSteps)
	}
	fmt.Printf("distributed output: %v\n", res.Output)
	fmt.Printf("central output    : %v\n", want)
	if res.Output.Equal(want) {
		fmt.Println("CONSISTENT: distributed run equals centralized evaluation")
	} else {
		fmt.Println("INCONSISTENT: the query is outside the strategy's class, or a bug")
	}

	if *verify {
		ok, err := core.VerifyCoordinationFree(s, q, net, input)
		if err != nil {
			fatal(err)
		}
		if ok {
			fmt.Println("coordination-free: heartbeat-only witness found under the ideal policy")
		} else {
			fmt.Println("coordination-freeness witness NOT found")
		}
	}

	if *seeds > 0 {
		opts := transducer.ExploreOptions{Seeds: *seeds, Faults: core.FaultConfigFor(s), Sink: sink}
		if *seed != 0 {
			opts.BaseSeed = *seed
		}
		v, stats, err := core.ExploreStrategy(s, q, net, pol, input, opts)
		if err != nil {
			fatal(err)
		}
		stats.Publish(reg)
		if v == nil {
			fmt.Printf("explore: %d schedules (%d transitions) clean — starvation, greedy adversaries, %d seeded fault plans\n",
				stats.Schedules, stats.Transitions, *seeds)
		} else {
			fmt.Printf("explore: VIOLATION after %d schedules: %v\n", stats.Schedules, v)
		}
	}

	if *explore > 0 {
		tr, err := core.Build(s, q)
		if err != nil {
			fatal(err)
		}
		v, err := transducer.Explore(net, tr, pol, s.RequiredModel(), input, want, *explore)
		if err != nil {
			fatal(err)
		}
		if v == nil {
			fmt.Printf("explore: all schedules to depth %d keep the output inside Q(I)\n", *explore)
		} else {
			fmt.Printf("explore: UNSAFE schedule found: %v\n", v)
		}
	}

	closeSink()
	writeMetrics(reg, *metrics)
}

// openTrace opens the JSONL event sink ("" = disabled, "-" = stdout).
func openTrace(path string) (*obs.Sink, func()) {
	switch path {
	case "":
		return nil, func() {}
	case "-":
		sink := obs.NewSink(os.Stdout)
		return sink, func() { checkSink(sink) }
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	sink := obs.NewSink(f)
	return sink, func() {
		checkSink(sink)
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
}

func checkSink(sink *obs.Sink) {
	if err := sink.Err(); err != nil {
		fatal(fmt.Errorf("writing trace: %w", err))
	}
}

// writeMetrics dumps the registry as JSON ("" = disabled, "-" = stdout).
func writeMetrics(reg *obs.Registry, path string) {
	if reg == nil || path == "" {
		return
	}
	if path == "-" {
		if err := reg.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := reg.WriteJSON(f); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
}

func lookupQuery(name string) (monotone.Query, *fact.Instance, error) {
	entry, err := queries.Lookup(name)
	if err != nil {
		return nil, nil, err
	}
	in := entry.Query.InputSchema()
	var demo *fact.Instance
	switch {
	case in.Has("E"):
		demo = fact.MustParseInstance(`E(a,b) E(b,c) E(c,a) E(d,d) E(d,e)`)
	case in.Has("Move"):
		demo = fact.MustParseInstance(`Move(a,b) Move(b,a) Move(b,c) Move(d,e)`)
	default:
		// Synthesize a small deterministic instance over the schema
		// (e.g. the R1..Rj schema of the duplicate queries).
		demo = generate.Random(rand.New(rand.NewSource(1)), in, generate.Values("v", 4), 6)
	}
	return entry.Query, demo, nil
}

func lookupStrategy(name string) (core.Strategy, error) {
	switch name {
	case "broadcast":
		return core.Broadcast, nil
	case "gossip":
		return core.Gossip, nil
	case "absence":
		return core.Absence, nil
	case "domainreq":
		return core.DomainRequest, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q", name)
	}
}

// buildNetwork resolves the -topology / -nodes pair: with no topology
// the classic flat n1..nN network, otherwise a seeded catalog
// topology whose zero-padded node ids double as the network.
func buildNetwork(topology string, nodes int, seed int64) (transducer.Network, *generate.Topology, error) {
	if topology == "" {
		ids := make([]transducer.NodeID, nodes)
		for k := range ids {
			ids[k] = transducer.NodeID(fmt.Sprintf("n%d", k+1))
		}
		net, err := transducer.NewNetwork(ids...)
		return net, nil, err
	}
	kind, err := generate.ParseTopoKind(topology)
	if err != nil {
		return nil, nil, err
	}
	topo, err := generate.NewTopology(kind, nodes, seed)
	if err != nil {
		return nil, nil, err
	}
	return netsim.NetworkOf(topo), topo, nil
}

// runEventEngine drives one event-driven run (and optionally a seeded
// topology fault sweep) on the netsim engine — the -topology path.
func runEventEngine(topo *generate.Topology, route netsim.Routing, s core.Strategy, q monotone.Query,
	net transducer.Network, pol transducer.Policy, input *fact.Instance, plan *transducer.FaultPlan,
	sink *obs.Sink, reg *obs.Registry, seed int64, seeds int) {
	tr, err := core.Build(s, q)
	if err != nil {
		fatal(err)
	}
	want, err := q.Eval(input)
	if err != nil {
		fatal(err)
	}
	sim, err := netsim.New(net, tr, pol, s.RequiredModel(), input, netsim.Options{
		Topo: topo, Routing: route, Seed: seed, Want: want,
	})
	if err != nil {
		fatal(err)
	}
	sim.Observe(sink)
	if plan != nil {
		sim.SetFaults(plan)
	}
	out, err := sim.Run()
	if err != nil {
		fatal(err)
	}
	sim.PublishTo(reg)

	m := sim.RunMetrics()
	fmt.Printf("\nevents: %d (sched ops %d, heap max %d), quiesced at t=%d\n",
		sim.Events(), sim.SchedOps(), sim.HeapMax(), sim.Now())
	fmt.Printf("transitions: %d (heartbeats %d), messages sent: %d, delivered: %d\n",
		m.Transitions, m.Heartbeats, m.MessagesSent, m.MessagesDelivered)
	if plan != nil {
		fmt.Printf("faults: duplicated %d, delayed %d, dropped %d, retransmitted %d, crashes %d, stalled steps %d\n",
			m.MessagesDuplicated, m.MessagesDelayed, m.MessagesDropped,
			m.MessagesRetransmitted, m.Crashes, m.StalledSteps)
	}
	if !sim.Conserved() {
		fmt.Println("WARNING: message conservation broken (engine bug)")
	}
	fmt.Printf("distributed output: %d facts, central: %d facts\n", out.Len(), want.Len())
	if out.Equal(want) {
		fmt.Println("CONSISTENT: distributed run equals centralized evaluation")
	} else {
		fmt.Println("INCONSISTENT: the query is outside the strategy's class, or a bug")
	}

	if seeds > 0 {
		opts := netsim.SweepOptions{Seeds: seeds, Faults: core.FaultConfigFor(s), Sink: sink}
		if seed != 0 {
			opts.BaseSeed = seed
		}
		v, stats, err := netsim.Sweep(topo, route, tr, pol, s.RequiredModel(), input, want, opts)
		if err != nil {
			fatal(err)
		}
		stats.Publish(reg)
		if v == nil {
			fmt.Printf("sweep: %d event runs clean (%d events, %d sched ops, heap max %d)\n",
				stats.Runs, stats.Events, stats.SchedOps, stats.HeapMax)
		} else {
			fmt.Printf("sweep: VIOLATION after %d runs: %v\n", stats.Runs, v)
		}
	}
}

func lookupPolicy(name string, net transducer.Network) (transducer.Policy, error) {
	switch name {
	case "hash":
		return transducer.HashPolicy(net), nil
	case "firstattr":
		return transducer.FirstAttrPolicy(net), nil
	case "guided":
		return transducer.DomainGuided(transducer.HashAssignment(net)), nil
	case "onenode":
		return transducer.AllToNode(net[0]), nil
	default:
		return nil, fmt.Errorf("unknown policy %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "calmsim: %v\n", err)
	os.Exit(1)
}

// startAdmin serves the shared admin endpoint (/metrics /debug/pprof)
// in the background ("" = disabled) — the same routes calmd's -admin
// exposes, so one curl recipe profiles every binary in the repo.
func startAdmin(addr string, reg *obs.Registry) {
	if addr == "" {
		return
	}
	adm, err := admin.Start(addr, admin.Options{Reg: reg})
	if err != nil {
		fmt.Fprintf(os.Stderr, "calmsim: admin: %v\n", err)
		return
	}
	fmt.Fprintf(os.Stderr, "calmsim: admin on http://%s\n", adm.Addr())
}

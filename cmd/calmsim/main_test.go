package main

import (
	"testing"

	"repro/internal/core"
	"repro/internal/generate"
	"repro/internal/netsim"
)

// TestBuildNetworkFlagRoundTrip pins the -topology / -nodes / -routing
// flag surface: every catalog name round-trips into a generated
// network of the requested size, the empty topology keeps the classic
// flat naming, and bad values fail loudly.
func TestBuildNetworkFlagRoundTrip(t *testing.T) {
	net, topo, err := buildNetwork("", 3, 0)
	if err != nil || topo != nil {
		t.Fatalf("flat network: topo=%v err=%v", topo, err)
	}
	if len(net) != 3 || net[0] != "n1" || net[2] != "n3" {
		t.Fatalf("flat naming broken: %v", net)
	}

	for _, name := range []string{"ring", "star", "tree", "powerlaw", "wan"} {
		net, topo, err := buildNetwork(name, 50, 7)
		if err != nil {
			t.Fatalf("-topology %s: %v", name, err)
		}
		if topo == nil || topo.Kind.String() != name {
			t.Fatalf("-topology %s resolved to %v", name, topo)
		}
		if len(net) != 50 || string(net[0]) != "n01" {
			t.Fatalf("-topology %s network wrong: len=%d first=%s", name, len(net), net[0])
		}
	}

	if _, _, err := buildNetwork("mesh", 10, 0); err == nil {
		t.Error("-topology mesh should fail")
	}
	if _, _, err := buildNetwork("ring", 1, 0); err == nil {
		t.Error("-topology ring -nodes 1 should fail")
	}

	for _, name := range []string{"broadcast", "neighbors"} {
		r, err := netsim.ParseRouting(name)
		if err != nil || r.String() != name {
			t.Errorf("-routing %s round trip: %v err=%v", name, r, err)
		}
	}
	if _, err := netsim.ParseRouting("flood"); err == nil {
		t.Error("-routing flood should fail")
	}
}

// TestLookupStrategyGossip: the new strategy name is wired and keeps
// its class.
func TestLookupStrategy(t *testing.T) {
	for name, want := range map[string]core.Strategy{
		"broadcast": core.Broadcast,
		"gossip":    core.Gossip,
		"absence":   core.Absence,
		"domainreq": core.DomainRequest,
	} {
		got, err := lookupStrategy(name)
		if err != nil || got != want {
			t.Errorf("lookupStrategy(%s) = %v, %v", name, got, err)
		}
	}
	if _, err := lookupStrategy("carrier"); err == nil {
		t.Error("unknown strategy should fail")
	}
	if _, err := generate.ParseTopoKind(generate.TopoWAN.String()); err != nil {
		t.Errorf("TopoKind String/Parse broken: %v", err)
	}
}

// Command experiments regenerates every result of the paper in one
// run: the monotonicity hierarchy of Figure 1 (Theorem 3.1, with the
// explicit separating witnesses), the preservation-class equalities of
// Lemma 3.2, the fragment inclusions of Figure 2 (Theorem 5.3,
// Lemma 5.2, Example 5.1), and the transducer-network equalities
// F0 = M, F1 = Mdistinct, F2 = Mdisjoint with their
// coordination-freeness witnesses (Theorems 4.3–4.5). Each row prints
// the paper's claim next to the machine-checked observation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"

	"repro/internal/admin"
	"repro/internal/core"
	"repro/internal/datalog"
	"repro/internal/experiments"
	"repro/internal/fact"
	"repro/internal/generate"
	"repro/internal/monotone"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/queries"
	"repro/internal/transducer"
)

type experiment struct {
	id    string
	claim string
	run   func(reg *obs.Registry) (string, bool)
}

// reportRow is one machine-readable result row: the paper's claim, the
// checked observation, and the run's counters/gauges (schedule counts,
// message flows, transitions), so the X1–X7 columns of EXPERIMENTS.md
// can be regenerated from the JSON report alone.
type reportRow struct {
	ID       string           `json:"id"`
	Claim    string           `json:"claim"`
	OK       bool             `json:"ok"`
	Observed string           `json:"observed"`
	Counters map[string]int64 `json:"counters,omitempty"`
	Gauges   map[string]int64 `json:"gauges,omitempty"`
}

type matrixRow struct {
	Query    string `json:"query"`
	Class    string `json:"class"`
	Expected bool   `json:"expected"`
	Observed bool   `json:"observed"`
}

type report struct {
	Paper    string      `json:"paper"`
	Rows     []reportRow `json:"rows"`
	Matrix   []matrixRow `json:"matrix"`
	Failures int         `json:"failures"`
}

func main() {
	metricsPath := flag.String("metrics", "", `write the machine-readable result matrix as JSON to this file ("-" = stdout)`)
	pprofAddr := flag.String("pprof", "", "serve the admin endpoint (/metrics /debug/pprof) on this address (e.g. localhost:6060)")
	flag.Parse()
	startAdmin(*pprofAddr)

	exps := []experiment{}
	exps = append(exps, figure1Experiments()...)
	exps = append(exps, lemma32Experiments()...)
	exps = append(exps, figure2FragmentExperiments()...)
	exps = append(exps, transducerExperiments()...)
	exps = append(exps, faultExperiments()...)
	exps = append(exps, netsimExperiments()...)

	fmt.Println("Reproduction matrix — Ameloot, Ketsman, Neven, Zinn: \"Weaker Forms of Monotonicity\" (PODS 2014)")
	fmt.Println()
	rep := report{Paper: "Ameloot, Ketsman, Neven, Zinn: Weaker Forms of Monotonicity for Declarative Networking (PODS 2014)"}
	failures := 0
	for _, e := range exps {
		reg := obs.NewRegistry()
		observed, ok := e.run(reg)
		status := "ok  "
		if !ok {
			status = "FAIL"
			failures++
		}
		fmt.Printf("[%s] %-8s %-58s  %s\n", status, e.id, e.claim, observed)
		snap := reg.Snapshot()
		rep.Rows = append(rep.Rows, reportRow{
			ID: e.id, Claim: e.claim, OK: ok, Observed: observed,
			Counters: snap.Counters, Gauges: snap.Gauges,
		})
	}
	fmt.Println()
	matrixFailures, matrix, err := printBoundedMatrix()
	if err != nil {
		fmt.Printf("bounded matrix error: %v\n", err)
		os.Exit(1)
	}
	failures += matrixFailures
	rep.Matrix = matrix
	rep.Failures = failures

	writeReport(rep, *metricsPath)

	fmt.Println()
	if failures > 0 {
		fmt.Printf("%d experiments FAILED\n", failures)
		os.Exit(1)
	}
	fmt.Printf("all %d experiments and the bounded-hierarchy matrix reproduced\n", len(exps))
}

// writeReport dumps the JSON report ("" = disabled, "-" = stdout).
func writeReport(rep report, path string) {
	if path == "" {
		return
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if path == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
	os.Exit(1)
}

// printBoundedMatrix renders the Figure 1 bounded-class membership
// matrix (Theorem 3.1's parameterized families), one series per query.
func printBoundedMatrix() (failures int, report []matrixRow, err error) {
	rows, err := experiments.BoundedMatrix(3, 150)
	if err != nil {
		return 0, nil, err
	}
	fmt.Println("Bounded-hierarchy matrix (✓ = member; paper-expected vs measured):")
	fmt.Println()
	// Group by query, print one line per query with class columns.
	type cell struct{ expected, observed bool }
	byQuery := map[string]map[string]cell{}
	var order []string
	var classes []string
	seenClass := map[string]bool{}
	for _, r := range rows {
		if byQuery[r.Query] == nil {
			byQuery[r.Query] = map[string]cell{}
			order = append(order, r.Query)
		}
		cl := r.Class.String()
		byQuery[r.Query][cl] = cell{r.Expected, r.Observed}
		if !seenClass[cl] {
			seenClass[cl] = true
			classes = append(classes, cl)
		}
		if !r.Agrees() {
			failures++
		}
		report = append(report, matrixRow{Query: r.Query, Class: cl, Expected: r.Expected, Observed: r.Observed})
	}
	fmt.Printf("%-16s", "")
	for _, cl := range classes {
		fmt.Printf(" %-14s", cl)
	}
	fmt.Println()
	for _, q := range order {
		fmt.Printf("%-16s", q)
		for _, cl := range classes {
			c, ok := byQuery[q][cl]
			switch {
			case !ok:
				fmt.Printf(" %-14s", "-")
			case c.expected == c.observed && c.observed:
				fmt.Printf(" %-14s", "✓")
			case c.expected == c.observed:
				fmt.Printf(" %-14s", "·")
			default:
				fmt.Printf(" %-14s", "MISMATCH")
			}
		}
		fmt.Println()
	}
	if failures > 0 {
		fmt.Printf("\n%d matrix cells disagree with Theorem 3.1\n", failures)
	}
	return failures, report, nil
}

// separation checks that (i, j) — allowed by class c — is a
// monotonicity violation for q: the exact witness that q ∉ c.
func separation(q monotone.Query, c monotone.Class, i, j *fact.Instance) (string, bool) {
	if !c.Allows(j, i) {
		return "witness pair not allowed by class", false
	}
	w, err := monotone.CheckPair(q, i, j)
	if err != nil {
		return err.Error(), false
	}
	if w == nil {
		return "no violation (separation lost)", false
	}
	return fmt.Sprintf("%s ∉ %v: %v dropped", q.Name(), c, w.Missing), true
}

// membership runs randomized violation search; clean = evidence.
func membership(q monotone.Query, c monotone.Class, trials int) (string, bool) {
	sampler := monotone.ClassSampler(c, func(rng *rand.Rand) (*fact.Instance, *fact.Instance) {
		i := generate.RandomGraph(rng, "v", 4, 5)
		pool := append(generate.Values("v", 4), generate.Values("w", 4)...)
		j := generate.Random(rng, fact.GraphSchema(), pool, 4)
		return i, j
	})
	w, err := monotone.FindViolation(q, c, sampler, 1234, trials)
	if err != nil {
		return err.Error(), false
	}
	if w != nil {
		return fmt.Sprintf("unexpected violation: %v", w), false
	}
	return fmt.Sprintf("%s ∈ %v (%d sampled pairs clean)", q.Name(), c, trials), true
}

func figure1Experiments() []experiment {
	return []experiment{
		{"F1.1a", "NoLoop ∈ Mdistinct \\ M (M ⊊ Mdistinct)", func(reg *obs.Registry) (string, bool) {
			s1, ok1 := separation(queries.NoLoop(), monotone.M,
				fact.MustParseInstance(`E(a,b)`), fact.MustParseInstance(`E(a,a)`))
			if !ok1 {
				return s1, false
			}
			return membership(queries.NoLoop(), monotone.MDistinct, 300)
		}},
		{"F1.1b", "QTC ∈ Mdisjoint \\ Mdistinct (Mdistinct ⊊ Mdisjoint)", func(reg *obs.Registry) (string, bool) {
			s1, ok1 := separation(queries.ComplementTC(), monotone.MDistinct,
				fact.MustParseInstance(`E(a,a) E(b,b)`), fact.MustParseInstance(`E(a,c) E(c,b)`))
			if !ok1 {
				return s1, false
			}
			return membership(queries.ComplementTC(), monotone.MDisjoint, 300)
		}},
		{"F1.1c", "Q_triangles ∈ C \\ Mdisjoint (Mdisjoint ⊊ C)", func(reg *obs.Registry) (string, bool) {
			return separation(queries.TrianglesUnlessTwoDisjoint(), monotone.MDisjoint,
				generate.Triangle("a", "b", "c"), generate.Triangle("x", "y", "z"))
		}},
		{"F1.2", "M = Mⁱ (violations shrink to |J| = 1)", func(reg *obs.Registry) (string, bool) {
			return separation(queries.NoLoop(), monotone.Mi(1),
				fact.MustParseInstance(`E(a,b)`), fact.MustParseInstance(`E(a,a)`))
		}},
		{"F1.3", "Q⁴clique ∈ M²distinct \\ M³distinct", func(reg *obs.Registry) (string, bool) {
			i := generate.Clique("v", 3)
			j := fact.NewInstance()
			for _, v := range generate.Values("v", 3) {
				j.Add(fact.New("E", "center", v))
			}
			s1, ok1 := separation(queries.KClique(4), monotone.MiDistinct(3), i, j)
			if !ok1 {
				return s1, false
			}
			return membership(queries.KClique(4), monotone.MiDistinct(2), 300)
		}},
		{"F1.4", "Q³star ∈ M²disjoint \\ M³disjoint", func(reg *obs.Registry) (string, bool) {
			s1, ok1 := separation(queries.KStar(3), monotone.MiDisjoint(3),
				fact.MustParseInstance(`E(a,b)`), generate.Star("c", "s", 3))
			if !ok1 {
				return s1, false
			}
			return membership(queries.KStar(3), monotone.MiDisjoint(2), 300)
		}},
		{"F1.5", "Q³clique ∈ M²disjoint \\ M²distinct", func(reg *obs.Registry) (string, bool) {
			i := generate.Clique("v", 2)
			j := fact.MustParseInstance(`E(center,v0) E(center,v1)`)
			s1, ok1 := separation(queries.KClique(3), monotone.MiDistinct(2), i, j)
			if !ok1 {
				return s1, false
			}
			return membership(queries.KClique(3), monotone.MiDisjoint(2), 300)
		}},
		{"F1.6", "Q³star ∈ M²disjoint \\ Mⁱdistinct", func(reg *obs.Registry) (string, bool) {
			return separation(queries.KStar(3), monotone.MiDistinct(1),
				generate.Star("c", "s", 2), fact.MustParseInstance(`E(c,new)`))
		}},
		{"F1.7", "Q³duplicate ∈ Mⁱdistinct \\ M³disjoint (i < 3)", func(reg *obs.Registry) (string, bool) {
			dup := fact.MustParseInstance(`R1(x,y) R2(x,y) R3(x,y)`)
			return separation(queries.Duplicate(3), monotone.MiDisjoint(3),
				fact.MustParseInstance(`R1(a,b)`), dup)
		}},
	}
}

func lemma32Experiments() []experiment {
	return []experiment{
		{"L3.2a", "H ⊊ Hinj: ≠-query dies under value collapse", func(reg *obs.Registry) (string, bool) {
			q := datalog.MustQuery(datalog.MustParseProgram(`O(x,y) :- E(x,y), x != y.`), "O")
			i := fact.MustParseInstance(`E(a,b)`)
			h := fact.Hom{"a": "c", "b": "c"}
			w, err := monotone.CheckHomPair(q, i, i.Map(h), h)
			if err != nil {
				return err.Error(), false
			}
			if w == nil {
				return "no collapse violation", false
			}
			return fmt.Sprintf("collapse drops %v", w.From), true
		}},
		{"L3.2b", "E = Mdistinct: QTC violates extension preservation", func(reg *obs.Registry) (string, bool) {
			w, err := monotone.CheckExtensionPair(queries.ComplementTC(),
				fact.MustParseInstance(`E(a,b)`),
				fact.MustParseInstance(`E(a,b) E(b,c) E(c,a)`))
			if err != nil {
				return err.Error(), false
			}
			if w == nil {
				return "no extension violation", false
			}
			return fmt.Sprintf("extension drops %v", w.Missing), true
		}},
	}
}

func figure2FragmentExperiments() []experiment {
	return []experiment{
		{"F2.1", "Datalog(≠) ⊆ M", func(reg *obs.Registry) (string, bool) {
			q := datalog.MustQuery(datalog.MustParseProgram(`O(x,y) :- E(x,y), x != y.`), "O")
			return membership(q, monotone.M, 300)
		}},
		{"F2.2", "SP-Datalog ⊆ Mdistinct (= E)", func(reg *obs.Registry) (string, bool) {
			return membership(queries.NoLoopDatalog(), monotone.MDistinct, 300)
		}},
		{"F2.3", "Thm 5.3: semicon-Datalog¬ ⊆ Mdisjoint (QTC program)", func(reg *obs.Registry) (string, bool) {
			p := queries.ComplementTCProgram()
			if !p.IsSemiConnected() {
				return "QTC program not classified semicon", false
			}
			return membership(queries.ComplementTCDatalog(), monotone.MDisjoint, 300)
		}},
		{"F2.4", "Lemma 5.2: con-Datalog¬ distributes over components", func(reg *obs.Registry) (string, bool) {
			p := queries.Example51P1()
			if !p.IsConnectedProgram() {
				return "P1 not con", false
			}
			q := datalog.MustQuery(p, "O")
			rng := rand.New(rand.NewSource(7))
			for trial := 0; trial < 30; trial++ {
				i := generate.DisjointUnion(
					generate.RandomGraph(rng, "v", 3, 3),
					generate.RandomGraph(rng, "w", 3, 3))
				whole, err := q.Eval(i)
				if err != nil {
					return err.Error(), false
				}
				parts := fact.NewInstance()
				for _, c := range fact.Components(i) {
					pc, err := q.Eval(c)
					if err != nil {
						return err.Error(), false
					}
					parts.AddAll(pc)
				}
				if !whole.Equal(parts) {
					return fmt.Sprintf("distribution failed on %v", i), false
				}
			}
			return "P1(I) = ∪ P1(co(I)) on 30 multi-component inputs", true
		}},
		{"F2.5", "Example 5.1: P1 ∈ con \\ Mdistinct; P2 ∉ semicon, ∉ Mdisjoint", func(reg *obs.Registry) (string, bool) {
			p1, p2 := queries.Example51P1(), queries.Example51P2()
			if p1.Classify() != datalog.FragConDatalog {
				return "P1 misclassified", false
			}
			if p2.IsSemiConnected() {
				return "P2 wrongly semicon", false
			}
			q1 := datalog.MustQuery(p1, "O")
			if s, ok := separation(q1, monotone.MDistinct,
				fact.MustParseInstance(`E(a,b)`), fact.MustParseInstance(`E(b,c) E(c,a)`)); !ok {
				return s, false
			}
			q2 := datalog.MustQuery(p2, "O")
			return separation(q2, monotone.MDisjoint,
				generate.Triangle("a", "b", "c"), generate.Triangle("x", "y", "z"))
		}},
		{"F2.6", "non-semicon Q³clique program ∉ Mdisjoint", func(reg *obs.Registry) (string, bool) {
			if queries.KCliqueProgram(3).IsSemiConnected() {
				return "Q³clique program wrongly semicon", false
			}
			return separation(queries.KClique(3), monotone.MDisjoint,
				fact.MustParseInstance(`E(a,b)`), generate.Triangle("x", "y", "z"))
		}},
	}
}

func transducerExperiments() []experiment {
	net := transducer.MustNetwork("n1", "n2", "n3")
	graph := fact.MustParseInstance(`E(a,b) E(b,c) E(c,a) E(d,d)`)
	game := fact.MustParseInstance(`Move(a,b) Move(b,a) Move(b,c) Move(d,e)`)

	check := func(reg *obs.Registry, s core.Strategy, q monotone.Query, pol transducer.Policy, in *fact.Instance) (string, bool) {
		want, err := q.Eval(in)
		if err != nil {
			return err.Error(), false
		}
		res, err := core.ComputeRun(s, q, net, pol, in, core.RunConfig{Reg: reg})
		if err != nil {
			return err.Error(), false
		}
		if !res.Output.Equal(want) {
			return fmt.Sprintf("distributed %v != central %v", res.Output, want), false
		}
		ok, err := core.VerifyCoordinationFree(s, q, net, in)
		if err != nil {
			return err.Error(), false
		}
		if !ok {
			return "no heartbeat witness", false
		}
		return fmt.Sprintf("consistent on 3 nodes, %d msgs, heartbeat witness ok", res.Metrics.MessagesSent), true
	}

	return []experiment{
		{"F2.8", "F0 = M: broadcast computes TC on any policy, coord-free", func(reg *obs.Registry) (string, bool) {
			return check(reg, core.Broadcast, queries.TC(), transducer.HashPolicy(net), graph)
		}},
		{"F2.9", "Thm 4.3 (F1 = Mdistinct): absence computes NoLoop", func(reg *obs.Registry) (string, bool) {
			return check(reg, core.Absence, queries.NoLoop(), transducer.HashPolicy(net), graph)
		}},
		{"F2.10a", "Thm 4.4 (F2 = Mdisjoint): domain-request computes QTC", func(reg *obs.Registry) (string, bool) {
			return check(reg, core.DomainRequest, queries.ComplementTC(),
				transducer.DomainGuided(transducer.HashAssignment(net)), graph)
		}},
		{"F2.10b", "win-move ∈ F2: coordination-free under domain guidance", func(reg *obs.Registry) (string, bool) {
			return check(reg, core.DomainRequest, queries.WinMove(),
				transducer.DomainGuided(transducer.HashAssignment(net)), game)
		}},
		{"F2.11", "Thm 4.5: strategies never read All (A0/A1/A2 models)", func(reg *obs.Registry) (string, bool) {
			for _, s := range []core.Strategy{core.Broadcast, core.Absence, core.DomainRequest} {
				if s.RequiredModel().ShowAll {
					return fmt.Sprintf("%v uses All", s), false
				}
			}
			return "broadcast oblivious; absence/domain-request run All-free", true
		}},
		{"N1", "F0 ⊊ F1 operationally: absence strategy needs policyR", func(reg *obs.Registry) (string, bool) {
			q := queries.NoLoop()
			in := fact.MustParseInstance(`E(a,b) E(a,a)`)
			pol := transducer.PolicyFunc(func(f fact.Fact) []transducer.NodeID {
				if f.Equal(fact.New("E", "a", "a")) {
					return []transducer.NodeID{"n2"}
				}
				return []transducer.NodeID{"n1"}
			})
			tr, err := core.Build(core.Absence, q)
			if err != nil {
				return err.Error(), false
			}
			two := transducer.MustNetwork("n1", "n2")
			sim, err := transducer.NewSimulation(two, tr, pol, transducer.Original, in)
			if err != nil {
				return err.Error(), false
			}
			out, err := sim.RunToQuiescence(64)
			if err != nil {
				return err.Error(), false
			}
			if !out.Has(fact.New("O", "a")) {
				return "expected premature O(a) without policy relations", false
			}
			return "without policyR the strategy emits the wrong O(a)", true
		}},
		{"N2", "F1 ⊊ F2 operationally: domain-request needs domain guidance", func(reg *obs.Registry) (string, bool) {
			q := queries.ComplementTC()
			in := fact.MustParseInstance(`E(a,b) E(b,a)`)
			two := transducer.MustNetwork("n1", "n2")
			pol := transducer.PolicyFunc(func(f fact.Fact) []transducer.NodeID {
				if f.Equal(fact.New("E", "b", "a")) {
					return []transducer.NodeID{"n2"}
				}
				return []transducer.NodeID{"n1"}
			})
			res, err := core.Compute(core.DomainRequest, q, two, pol, in, 0)
			if err != nil {
				return err.Error(), false
			}
			if res.Output.Empty() {
				return "expected wrong outputs on a non-guided policy", false
			}
			return fmt.Sprintf("non-guided policy yields %d wrong facts", res.Output.Len()), true
		}},
		{"D1", "§7: doubled program — connected WFS stays in Mdisjoint", func(reg *obs.Registry) (string, bool) {
			p := queries.WinMoveProgram()
			d, err := queries.DoubledProgram(p)
			if err != nil {
				return err.Error(), false
			}
			if !d.IsStratifiable() || !d.IsConnectedProgram() {
				return "doubled win-move not stratifiable+connected", false
			}
			// Agreement with the direct alternating fixpoint on samples.
			rng := rand.New(rand.NewSource(3))
			for trial := 0; trial < 20; trial++ {
				g := generate.Random(rng, queries.MoveSchema, generate.Values("p", 4), 5)
				a, err := queries.WellFounded(p, g)
				if err != nil {
					return err.Error(), false
				}
				b, err := queries.WellFoundedViaDoubled(p, g)
				if err != nil {
					return err.Error(), false
				}
				if !a.True.Equal(b.True) || !a.Undefined.Equal(b.Undefined) {
					return "doubled vs direct WFS disagree", false
				}
			}
			return "doubled(win-move) ∈ con-Datalog¬, agrees with direct WFS (20 samples)", true
		}},
	}
}

// faultExperiments stress-tests the Figure 2 equalities against
// adversarial delivery: every theorem is quantified over all fair
// runs, so each strategy must survive starvation schedules, greedy
// fresh-value adversaries, and ≥ 1000 seeded fault plans (duplication,
// delay, partitions, stalls, crash-restart) on a query inside its
// class — while the same explorer, pointed one class up, rediscovers
// the known wrong-fact divergences automatically.
func faultExperiments() []experiment {
	net := transducer.MustNetwork("n1", "n2", "n3")
	graph := fact.MustParseInstance(`E(a,b) E(b,c) E(c,a) E(d,d) E(d,e)`)
	cycle := fact.MustParseInstance(`E(a,b) E(b,x) E(x,a)`)
	twoTriangles := fact.MustParseInstance(`E(a,b) E(b,c) E(c,a) E(x,y) E(y,z) E(z,x)`)
	hash := transducer.HashPolicy(net)
	guided := transducer.DomainGuided(transducer.HashAssignment(net))

	clean := func(reg *obs.Registry, s core.Strategy, q monotone.Query, pol transducer.Policy, in *fact.Instance, seeds int) (string, bool) {
		v, stats, err := core.ExploreStrategy(s, q, net, pol, in, transducer.ExploreOptions{
			Seeds:  seeds,
			Faults: core.FaultConfigFor(s),
		})
		if err != nil {
			return err.Error(), false
		}
		stats.Publish(reg)
		if v != nil {
			return fmt.Sprintf("unexpected violation: %v", v), false
		}
		return fmt.Sprintf("%d schedules clean (%d seeded fault plans, %d transitions)",
			stats.Schedules, seeds, stats.Transitions), true
	}
	rediscover := func(reg *obs.Registry, s core.Strategy, q monotone.Query, pol transducer.Policy, in *fact.Instance) (string, bool) {
		v, stats, err := core.ExploreStrategy(s, q, net, pol, in, transducer.ExploreOptions{
			Seeds:  100,
			Faults: core.FaultConfigFor(s),
		})
		if err != nil {
			return err.Error(), false
		}
		stats.Publish(reg)
		if v == nil {
			return fmt.Sprintf("divergence NOT rediscovered in %d schedules", stats.Schedules), false
		}
		return fmt.Sprintf("%v: %v after %d schedules", v.Kind, v.Bad, stats.Schedules), true
	}

	return []experiment{
		{"X1", "fairness stress: broadcast/TC clean on 1000 fault plans", func(reg *obs.Registry) (string, bool) {
			return clean(reg, core.Broadcast, queries.TC(), hash, graph, 1000)
		}},
		{"X2", "fairness stress: absence/NoLoop clean on 1000 fault plans", func(reg *obs.Registry) (string, bool) {
			return clean(reg, core.Absence, queries.NoLoop(), hash, graph, 1000)
		}},
		{"X3", "fairness stress: domainreq/QTC clean on 1000 fault plans", func(reg *obs.Registry) (string, bool) {
			return clean(reg, core.DomainRequest, queries.ComplementTC(), guided, graph, 1000)
		}},
		{"X4", "explorer rediscovers broadcast ∉ F1 (NoLoop wrong fact)", func(reg *obs.Registry) (string, bool) {
			return rediscover(reg, core.Broadcast, queries.NoLoop(), hash, graph)
		}},
		{"X5", "explorer rediscovers absence ∉ F2 (QTC wrong fact)", func(reg *obs.Registry) (string, bool) {
			return rediscover(reg, core.Absence, queries.ComplementTC(), hash, cycle)
		}},
		{"X6", "explorer rediscovers domainreq ∉ C-free (triangles)", func(reg *obs.Registry) (string, bool) {
			return rediscover(reg, core.DomainRequest, queries.TrianglesUnlessTwoDisjoint(), guided, twoTriangles)
		}},
		{"X7", "crash-restart falsifies domainreq's Xok certificates", func(reg *obs.Registry) (string, bool) {
			// Unlike X3, hand the explorer crashy plans: the Xok message
			// asserts requester *state* ("all facts of this value are
			// stored"), which a restart wipes while the recovery
			// rebroadcast re-delivers the stale certificate. Broadcast
			// and absence messages state global truths about the input,
			// so X1/X2 survive the same crash mix.
			v, stats, err := core.ExploreStrategy(core.DomainRequest, queries.ComplementTC(), net, guided, graph,
				transducer.ExploreOptions{Seeds: 1000, Faults: transducer.DefaultFaultConfig()})
			if err != nil {
				return err.Error(), false
			}
			stats.Publish(reg)
			if v == nil {
				return fmt.Sprintf("crash divergence NOT found in %d schedules", stats.Schedules), false
			}
			return fmt.Sprintf("%v: %v under %s", v.Kind, v.Bad, v.Schedule), true
		}},
	}
}

// netsimExperiments exercises the event-driven large-network engine
// (internal/netsim): equivalence with the tick explorer on the X1–X7
// configuration, gossip convergence across the topology catalog, and
// the thousand-node determinism + scheduler-efficiency acceptance run.
func netsimExperiments() []experiment {
	net := transducer.MustNetwork("n1", "n2", "n3")
	graph := fact.MustParseInstance(`E(a,b) E(b,c) E(c,a) E(d,d) E(d,e)`)
	hash := transducer.HashPolicy(net)

	return []experiment{
		{"X8", "event engine replays the schedule explorer (tick = event)", func(reg *obs.Registry) (string, bool) {
			total := 0
			for _, row := range []struct {
				s core.Strategy
				q monotone.Query
			}{
				{core.Broadcast, queries.TC()},
				{core.Gossip, queries.TC()},
				{core.Absence, queries.NoLoop()},
			} {
				base := transducer.ExploreOptions{Seeds: 200, Faults: core.FaultConfigFor(row.s)}
				v1, st1, err := core.ExploreStrategy(row.s, row.q, net, hash, graph, base)
				if err != nil {
					return err.Error(), false
				}
				ev := base
				ev.NewMachine = netsim.MachineFactory(netsim.Options{})
				v2, st2, err := core.ExploreStrategy(row.s, row.q, net, hash, graph, ev)
				if err != nil {
					return err.Error(), false
				}
				if v1 != nil || v2 != nil {
					return fmt.Sprintf("%v: unexpected violation (tick %v, event %v)", row.s, v1, v2), false
				}
				if st1 != st2 {
					return fmt.Sprintf("%v: stats diverge (tick %+v, event %+v)", row.s, st1, st2), false
				}
				st2.Publish(reg)
				total += st1.Schedules
			}
			return fmt.Sprintf("3 strategies, %d schedules each way, identical stats", total), true
		}},
		{"X9", "gossip(M) converges on every catalog topology under faults", func(reg *obs.Registry) (string, bool) {
			tr, err := core.Build(core.Gossip, queries.TC())
			if err != nil {
				return err.Error(), false
			}
			want, err := queries.TC().Eval(graph)
			if err != nil {
				return err.Error(), false
			}
			runs, events := 0, 0
			for _, kind := range []generate.TopoKind{
				generate.TopoRing, generate.TopoStar, generate.TopoTree, generate.TopoPowerLaw, generate.TopoWAN,
			} {
				topo, err := generate.NewTopology(kind, 256, 19)
				if err != nil {
					return err.Error(), false
				}
				bigNet := netsim.NetworkOf(topo)
				v, stats, err := netsim.Sweep(topo, netsim.RouteNeighbors, tr,
					transducer.HashPolicy(bigNet), core.Gossip.RequiredModel(), graph, want,
					netsim.SweepOptions{Seeds: 5, Faults: core.FaultConfigFor(core.Gossip)})
				if err != nil {
					return err.Error(), false
				}
				if v != nil {
					return fmt.Sprintf("%v: %v", kind, v), false
				}
				stats.Publish(reg)
				runs += stats.Runs
				events += stats.Events
			}
			return fmt.Sprintf("5 topologies x 256 nodes: %d faulty runs clean (%d events), conservation held", runs, events), true
		}},
		{"X10", "1024-node power-law sweep: deterministic, ≥10x fewer sched ops", func(reg *obs.Registry) (string, bool) {
			tr, err := core.Build(core.Gossip, queries.TC())
			if err != nil {
				return err.Error(), false
			}
			want, err := queries.TC().Eval(graph)
			if err != nil {
				return err.Error(), false
			}
			topo, err := generate.NewTopology(generate.TopoPowerLaw, 1024, 23)
			if err != nil {
				return err.Error(), false
			}
			bigNet := netsim.NetworkOf(topo)
			pol := transducer.HashPolicy(bigNet)
			mod := core.Gossip.RequiredModel()

			v, stats, err := netsim.Sweep(topo, netsim.RouteNeighbors, tr, pol, mod, graph, want,
				netsim.SweepOptions{Seeds: 3, Faults: core.FaultConfigFor(core.Gossip)})
			if err != nil {
				return err.Error(), false
			}
			if v != nil {
				return fmt.Sprintf("sweep violated: %v", v), false
			}
			stats.Publish(reg)

			// Equal seeds must replay the identical event stream.
			digest := func(seed int64) (uint64, error) {
				s, err := netsim.New(bigNet, tr, pol, mod, graph, netsim.Options{
					Topo: topo, Routing: netsim.RouteNeighbors, Seed: seed,
				})
				if err != nil {
					return 0, err
				}
				h := fnv.New64a()
				s.Observe(obs.NewSink(h))
				if _, err := s.Run(); err != nil {
					return 0, err
				}
				return h.Sum64(), nil
			}
			d1, err := digest(41)
			if err != nil {
				return err.Error(), false
			}
			d2, err := digest(41)
			if err != nil {
				return err.Error(), false
			}
			if d1 != d2 {
				return "equal seeds produced different event streams", false
			}

			// Sparse-activity scheduler efficiency: a long stall window on
			// a 1024-ring leaves every other node idle; the tick walk pays
			// one visit per node per tick regardless.
			ring, err := generate.NewTopology(generate.TopoRing, 1024, 5)
			if err != nil {
				return err.Error(), false
			}
			ringNet := netsim.NetworkOf(ring)
			plan, err := transducer.ParseFaultPlan("stall=n0001@5-250000", 11)
			if err != nil {
				return err.Error(), false
			}
			build := func() (*netsim.Sim, error) {
				s, err := netsim.New(ringNet, tr, transducer.HashPolicy(ringNet), mod, graph,
					netsim.Options{Topo: ring, Routing: netsim.RouteNeighbors})
				if err == nil {
					s.SetFaults(plan)
				}
				return s, err
			}
			fair, err := build()
			if err != nil {
				return err.Error(), false
			}
			if _, err := fair.RunFair(1 << 20); err != nil {
				return err.Error(), false
			}
			evs, err := build()
			if err != nil {
				return err.Error(), false
			}
			if _, err := evs.Run(); err != nil {
				return err.Error(), false
			}
			ratio := float64(fair.SchedOps()) / float64(evs.SchedOps())
			if ratio < 10 {
				return fmt.Sprintf("sched-ops advantage only %.1fx (tick %d, event %d)", ratio, fair.SchedOps(), evs.SchedOps()), false
			}
			return fmt.Sprintf("sweep clean, streams deterministic, sched ops %.1fx fewer (tick %d vs event %d)",
				ratio, fair.SchedOps(), evs.SchedOps()), true
		}},
	}
}

// startAdmin serves the shared admin endpoint (/metrics /debug/pprof)
// in the background ("" = disabled) — the same routes calmd's -admin
// exposes, so one curl recipe profiles every binary in the repo.
func startAdmin(addr string) {
	if addr == "" {
		return
	}
	adm, err := admin.Start(addr, admin.Options{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: admin: %v\n", err)
		return
	}
	fmt.Fprintf(os.Stderr, "experiments: admin on http://%s\n", adm.Addr())
}

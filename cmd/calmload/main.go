// Command calmload is a seeded load generator for calmd's concurrent
// serving core. It drives N pipelined TCP connections with a
// reproducible read/write mix and reports ops/sec plus
// p50/p90/p99/p999 latency (from merged obs.LatencyHist histograms,
// the same instrument the server scrapes on /metrics); with -compare
// it also runs the serial single-connection ping-pong baseline and
// reports the speedup, which is the PR-7 acceptance number (>= 2x on
// read-heavy mixes). With -metrics-url it scrapes the server's admin
// /metrics after the run and prints server-side srv_read_ns /
// srv_write_ns quantiles next to the client-observed ones — the
// server-side time is a subset of the client round trip, so a server
// quantile far above the client one flags a broken instrument.
//
// With no -addr it boots its own in-process daemon (transitive
// closure over a seeded chain graph) on a loopback port, so a single
// command measures the full TCP serving stack. -addr accepts a
// comma-separated endpoint list — connection i dials endpoint i mod N,
// the placement-aware client path against a sharded deployment — and
// -self-shards boots an in-process sharded cluster and drives its
// per-shard endpoints (or its router, with -via-router):
//
//	calmload -compare -duration 2s
//	calmload -addr localhost:4432 -conns 8 -window 64
//	calmload -addr localhost:4432,localhost:4433 -conns 8
//	calmload -self-shards 4 -conns 8 -duration 2s
//	calmload -smoke -duration 300ms   # CI gate: ops > 0, errors == 0
//
// -format gobench emits benchmark-formatted lines that
// scripts/bench.sh folds into the committed BENCH_PR<n>.json
// snapshots alongside the go test benchmarks.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/load"
	"repro/internal/serve"
)

func main() {
	var (
		addr       = flag.String("addr", "", "calmd TCP address(es), comma-separated; conn i dials addr i mod N (default: boot an in-process daemon)")
		chain      = flag.Int("self-chain", 16, "chain-graph length seeding the in-process daemon")
		shards     = flag.Int("self-shards", 0, "boot an in-process sharded cluster with this many shards and drive its per-shard endpoints")
		placement  = flag.String("placement", "component", "placement strategy for -self-shards: hash or component")
		viaRouter  = flag.Bool("via-router", false, "with -self-shards, drive the cluster router instead of the per-shard endpoints")
		conns      = flag.Int("conns", 4, "concurrent connections")
		window     = flag.Int("window", 32, "max in-flight requests per connection (1 = serial ping-pong)")
		duration   = flag.Duration("duration", 2*time.Second, "send window per run")
		seed       = flag.Int64("seed", 1, "base RNG seed")
		readFrac   = flag.Float64("read-frac", 0.9, "fraction of requests that are reads")
		compare    = flag.Bool("compare", false, "also run the serial 1-connection baseline and report speedup")
		smoke      = flag.Bool("smoke", false, "exit non-zero unless ops > 0 and protocol errors == 0")
		format     = flag.String("format", "json", "output format: json or gobench")
		metricsURL = flag.String("metrics-url", "", "scrape this admin /metrics URL after the run and cross-check server-side latency quantiles")
		benchName  = flag.String("bench-name", "", "with -format gobench, override the benchmark name (default: derived from run shape)")
		out        = flag.String("out", "-", `output file ("-" = stdout)`)
	)
	flag.Parse()

	var targets []string
	switch {
	case *addr != "":
		targets = strings.Split(*addr, ",")
	case *shards > 0:
		place, err := cluster.ParsePlacement(*placement)
		if err != nil {
			fatal(err)
		}
		eps, shutdown, err := load.StartCluster(*chain, *shards, place, serve.Options{})
		if err != nil {
			fatal(err)
		}
		defer shutdown()
		if *viaRouter {
			targets = []string{eps.Router}
		} else {
			targets = eps.Shards
		}
		fmt.Fprintf(os.Stderr, "calmload: in-process cluster: router %s, shards %s\n",
			eps.Router, strings.Join(eps.Shards, ","))
	default:
		target, shutdown, err := load.StartSelf(*chain, serve.Options{})
		if err != nil {
			fatal(err)
		}
		defer shutdown()
		targets = []string{target}
		fmt.Fprintf(os.Stderr, "calmload: in-process daemon on %s\n", target)
	}

	cfg := load.Config{
		Addrs:    targets,
		Conns:    *conns,
		Window:   *window,
		Duration: *duration,
		Seed:     *seed,
		ReadFrac: *readFrac,
	}

	var payload any
	var results []*load.Result
	if *compare {
		cmp, err := load.Compare(cfg)
		if err != nil {
			fatal(err)
		}
		payload = cmp
		results = []*load.Result{cmp.Baseline, cmp.Pipelined}
	} else {
		res, err := load.Run(cfg)
		if err != nil {
			fatal(err)
		}
		payload = res
		results = []*load.Result{res}
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "json":
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(payload); err != nil {
			fatal(err)
		}
	case "gobench":
		writeGobench(w, results, *benchName)
	default:
		fatal(fmt.Errorf("unknown -format %q", *format))
	}

	if *metricsURL != "" {
		crossCheck(*metricsURL, results[len(results)-1])
	}

	if *smoke {
		for _, r := range results {
			if r.Ops == 0 || r.Errors != 0 {
				fatal(fmt.Errorf("smoke gate failed: ops=%d errors=%d (conns=%d window=%d)",
					r.Ops, r.Errors, r.Conns, r.Window))
			}
		}
		fmt.Fprintln(os.Stderr, "calmload: smoke gate passed")
	}
}

// writeGobench renders results in `go test -bench` line format so
// scripts/bench.sh's renderer picks them up. Names must not end in
// -<digits> (the renderer strips a GOMAXPROCS suffix); run shape
// lands in the conns/window metric columns instead. nameOverride
// replaces the derived name — the shard sweep uses it to label one
// row per shard count (BenchmarkCalmloadShards<n>).
func writeGobench(w *os.File, results []*load.Result, nameOverride string) {
	fmt.Fprintln(w, "pkg: repro/cmd/calmload")
	for _, r := range results {
		name := "BenchmarkCalmloadPipelined"
		if r.Conns == 1 && r.Window == 1 {
			name = "BenchmarkCalmloadSerial"
		}
		if nameOverride != "" {
			name = nameOverride
		}
		nsPerOp := int64(0)
		if r.Ops > 0 {
			nsPerOp = int64(r.DurationSec * 1e9 / float64(r.Ops))
		}
		fmt.Fprintf(w, "%s %d %d ns/op %.0f ops/s %d p50-ns %d p90-ns %d p99-ns %d p999-ns %d conns %d window %d errors\n",
			name, r.Ops, nsPerOp, r.OpsPerSec, r.P50Ns, r.P90Ns, r.P99Ns, r.P999Ns, r.Conns, r.Window, r.Errors)
	}
}

// crossCheck scrapes an admin /metrics endpoint and prints the
// server-side srv_read_ns / srv_write_ns quantiles next to the
// client-observed ones. Server-side service time is a strict subset
// of the client round trip, so a server quantile exceeding the client
// one (beyond histogram bucketing error) is flagged as a warning.
func crossCheck(url string, r *load.Result) {
	qs, err := scrapeQuantiles(url)
	if err != nil {
		fatal(fmt.Errorf("metrics-url: %w", err))
	}
	fmt.Fprintf(os.Stderr, "calmload: server quantiles from %s\n", url)
	type row struct {
		family string
		client [4]int64
	}
	rows := []row{
		{"srv_read_ns", [4]int64{r.ReadP50Ns, r.ReadP90Ns, r.ReadP99Ns, r.ReadP999Ns}},
		{"srv_write_ns", [4]int64{r.WriteP50Ns, r.WriteP90Ns, r.WriteP99Ns, r.WriteP999Ns}},
	}
	labels := [][2]string{{"0.5", "p50"}, {"0.9", "p90"}, {"0.99", "p99"}, {"0.999", "p999"}}
	for _, rw := range rows {
		fam, ok := qs[rw.family]
		if !ok {
			fmt.Fprintf(os.Stderr, "calmload:   %s: no quantile family in scrape (server built without -admin registry?)\n", rw.family)
			continue
		}
		for i, q := range labels {
			srv, ok := fam[q[0]]
			if !ok {
				continue
			}
			cli := rw.client[i]
			note := ""
			// 1.25x slack: both sides are log-scale histograms with
			// <=12.5% bucket width, and the scrape window is wider than
			// the run window.
			if cli > 0 && float64(srv) > 1.25*float64(cli) {
				note = "  WARN server-side exceeds client round trip"
			}
			fmt.Fprintf(os.Stderr, "calmload:   %s %s: server %d ns, client %d ns%s\n",
				rw.family, q[1], srv, cli, note)
		}
	}
}

// scrapeQuantiles fetches a Prometheus text exposition and collects
// every `<family>_quantile{q="..."} <value>` gauge into
// family -> q -> value.
func scrapeQuantiles(url string) (map[string]map[string]int64, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: status %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	out := map[string]map[string]int64{}
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, rest, ok := strings.Cut(line, `_quantile{q="`)
		if !ok {
			continue
		}
		q, val, ok := strings.Cut(rest, `"} `)
		if !ok {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(strings.TrimSpace(val), "%g", &v); err != nil {
			continue
		}
		fam := out[name]
		if fam == nil {
			fam = map[string]int64{}
			out[name] = fam
		}
		fam[q] = int64(v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "calmload: %v\n", err)
	os.Exit(1)
}

// Command calmload is a seeded load generator for calmd's concurrent
// serving core. It drives N pipelined TCP connections with a
// reproducible read/write mix and reports ops/sec plus p50/p99
// latency; with -compare it also runs the serial single-connection
// ping-pong baseline and reports the speedup, which is the PR-7
// acceptance number (>= 2x on read-heavy mixes).
//
// With no -addr it boots its own in-process daemon (transitive
// closure over a seeded chain graph) on a loopback port, so a single
// command measures the full TCP serving stack. -addr accepts a
// comma-separated endpoint list — connection i dials endpoint i mod N,
// the placement-aware client path against a sharded deployment — and
// -self-shards boots an in-process sharded cluster and drives its
// per-shard endpoints (or its router, with -via-router):
//
//	calmload -compare -duration 2s
//	calmload -addr localhost:4432 -conns 8 -window 64
//	calmload -addr localhost:4432,localhost:4433 -conns 8
//	calmload -self-shards 4 -conns 8 -duration 2s
//	calmload -smoke -duration 300ms   # CI gate: ops > 0, errors == 0
//
// -format gobench emits benchmark-formatted lines that
// scripts/bench.sh folds into the committed BENCH_PR<n>.json
// snapshots alongside the go test benchmarks.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/load"
	"repro/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", "", "calmd TCP address(es), comma-separated; conn i dials addr i mod N (default: boot an in-process daemon)")
		chain     = flag.Int("self-chain", 16, "chain-graph length seeding the in-process daemon")
		shards    = flag.Int("self-shards", 0, "boot an in-process sharded cluster with this many shards and drive its per-shard endpoints")
		placement = flag.String("placement", "component", "placement strategy for -self-shards: hash or component")
		viaRouter = flag.Bool("via-router", false, "with -self-shards, drive the cluster router instead of the per-shard endpoints")
		conns     = flag.Int("conns", 4, "concurrent connections")
		window    = flag.Int("window", 32, "max in-flight requests per connection (1 = serial ping-pong)")
		duration  = flag.Duration("duration", 2*time.Second, "send window per run")
		seed      = flag.Int64("seed", 1, "base RNG seed")
		readFrac  = flag.Float64("read-frac", 0.9, "fraction of requests that are reads")
		compare   = flag.Bool("compare", false, "also run the serial 1-connection baseline and report speedup")
		smoke     = flag.Bool("smoke", false, "exit non-zero unless ops > 0 and protocol errors == 0")
		format    = flag.String("format", "json", "output format: json or gobench")
		benchName = flag.String("bench-name", "", "with -format gobench, override the benchmark name (default: derived from run shape)")
		out       = flag.String("out", "-", `output file ("-" = stdout)`)
	)
	flag.Parse()

	var targets []string
	switch {
	case *addr != "":
		targets = strings.Split(*addr, ",")
	case *shards > 0:
		place, err := cluster.ParsePlacement(*placement)
		if err != nil {
			fatal(err)
		}
		eps, shutdown, err := load.StartCluster(*chain, *shards, place, serve.Options{})
		if err != nil {
			fatal(err)
		}
		defer shutdown()
		if *viaRouter {
			targets = []string{eps.Router}
		} else {
			targets = eps.Shards
		}
		fmt.Fprintf(os.Stderr, "calmload: in-process cluster: router %s, shards %s\n",
			eps.Router, strings.Join(eps.Shards, ","))
	default:
		target, shutdown, err := load.StartSelf(*chain, serve.Options{})
		if err != nil {
			fatal(err)
		}
		defer shutdown()
		targets = []string{target}
		fmt.Fprintf(os.Stderr, "calmload: in-process daemon on %s\n", target)
	}

	cfg := load.Config{
		Addrs:    targets,
		Conns:    *conns,
		Window:   *window,
		Duration: *duration,
		Seed:     *seed,
		ReadFrac: *readFrac,
	}

	var payload any
	var results []*load.Result
	if *compare {
		cmp, err := load.Compare(cfg)
		if err != nil {
			fatal(err)
		}
		payload = cmp
		results = []*load.Result{cmp.Baseline, cmp.Pipelined}
	} else {
		res, err := load.Run(cfg)
		if err != nil {
			fatal(err)
		}
		payload = res
		results = []*load.Result{res}
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "json":
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(payload); err != nil {
			fatal(err)
		}
	case "gobench":
		writeGobench(w, results, *benchName)
	default:
		fatal(fmt.Errorf("unknown -format %q", *format))
	}

	if *smoke {
		for _, r := range results {
			if r.Ops == 0 || r.Errors != 0 {
				fatal(fmt.Errorf("smoke gate failed: ops=%d errors=%d (conns=%d window=%d)",
					r.Ops, r.Errors, r.Conns, r.Window))
			}
		}
		fmt.Fprintln(os.Stderr, "calmload: smoke gate passed")
	}
}

// writeGobench renders results in `go test -bench` line format so
// scripts/bench.sh's renderer picks them up. Names must not end in
// -<digits> (the renderer strips a GOMAXPROCS suffix); run shape
// lands in the conns/window metric columns instead. nameOverride
// replaces the derived name — the shard sweep uses it to label one
// row per shard count (BenchmarkCalmloadShards<n>).
func writeGobench(w *os.File, results []*load.Result, nameOverride string) {
	fmt.Fprintln(w, "pkg: repro/cmd/calmload")
	for _, r := range results {
		name := "BenchmarkCalmloadPipelined"
		if r.Conns == 1 && r.Window == 1 {
			name = "BenchmarkCalmloadSerial"
		}
		if nameOverride != "" {
			name = nameOverride
		}
		nsPerOp := int64(0)
		if r.Ops > 0 {
			nsPerOp = int64(r.DurationSec * 1e9 / float64(r.Ops))
		}
		fmt.Fprintf(w, "%s %d %d ns/op %.0f ops/s %d p50-ns %d p99-ns %d conns %d window %d errors\n",
			name, r.Ops, nsPerOp, r.OpsPerSec, r.P50Ns, r.P99Ns, r.Conns, r.Window, r.Errors)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "calmload: %v\n", err)
	os.Exit(1)
}

// Command calmd is a long-lived serving daemon around the incremental
// view-maintenance engine (internal/incr): it loads a Datalog(≠)
// program, materializes an initial instance, then accepts
// insert/retract deltas and queries over a newline-delimited JSON
// protocol — on stdin/stdout by default, or on a TCP socket with
// -listen. Deltas are applied incrementally (counting for insertions
// and non-recursive deletions, DRed for deletions through recursion or
// stratified negation), never by recomputation.
//
// Serving is concurrent and epoch-pinned (internal/serve): a single
// writer goroutine group-commits batched deltas and publishes
// immutable read epochs; queries run concurrently against the epoch
// current when they arrived, on any number of pipelined connections,
// with responses in request order per connection and bounded queues
// everywhere (backpressure instead of unbounded buffering). Query
// responses stay a pure function of the serving epoch's fact set, so
// a daemon restored with -restore from a snapshot answers
// byte-identically to the daemon that wrote it.
//
// With -shards N the daemon runs as a sharded cluster behind a
// router speaking the same protocol (internal/cluster): base facts
// are partitioned or replicated across N in-process shards, deltas
// stream to shard pumps asynchronously, and the fragment classifier
// picks the weakest sound coordination plan — coordination-free reads
// for monotone programs, fenced reads under stratified negation.
//
// Usage:
//
//	calmd -program tc.dl -input graph.facts
//	calmd -restore state.snap -listen localhost:4432
//	calmd -program tc.dl -input graph.facts -shards 4 -placement component -listen localhost:4432
//
// See the protocol comment in internal/serve for the request/response
// shapes.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/admin"
	"repro/internal/cluster"
	"repro/internal/datalog"
	"repro/internal/fact"
	"repro/internal/incr"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	var (
		programPath = flag.String("program", "", "path to the Datalog¬ program (required unless -restore)")
		inputPath   = flag.String("input", "", "path to the initial instance (default: empty instance)")
		restorePath = flag.String("restore", "", "restore state from a calmd snapshot instead of -program/-input")
		listenAddr  = flag.String("listen", "", "serve the protocol on this TCP address (default: stdin/stdout)")
		shardCount  = flag.Int("shards", 0, "run as a sharded cluster with this many shards (0 = single node)")
		placement   = flag.String("placement", "hash", "shard placement strategy for -shards: hash or component")
		mode        = flag.String("mode", "seminaive", "maintenance evaluation mode: seminaive or parallel")
		workers     = flag.Int("workers", 0, "worker goroutines for -mode parallel (0 = GOMAXPROCS)")
		writeQueue  = flag.Int("write-queue", 0, "bound of the shared write queue (0 = default 256)")
		maxBatch    = flag.Int("max-batch", 0, "max deltas per group commit (0 = default 64)")
		pipeline    = flag.Int("pipeline", 0, "max in-flight requests per connection (0 = default 64)")
		snapshotDir = flag.String("snapshot-dir", "", "confine snapshot ops to bare file names inside this directory")
		metricsPath = flag.String("metrics", "", `write incr.*/srv.* engine metrics as JSON to this file on exit ("-" = stdout)`)
		tracePath   = flag.String("trace", "", `write structured JSONL maintenance events to this file ("-" = stdout)`)
		adminAddr   = flag.String("admin", "", "serve the admin endpoint (/metrics /healthz /trace /debug/pprof) on this address (e.g. localhost:6060)")
		traceSpans  = flag.Int("trace-spans", 4096, "span ring capacity for -admin request tracing (0 = tracing off)")
		pprofAddr   = flag.String("pprof", "", "deprecated alias for -admin")
	)
	flag.Parse()
	if *adminAddr == "" {
		*adminAddr = *pprofAddr
	}

	var reg *obs.Registry
	if *metricsPath != "" || *adminAddr != "" {
		reg = obs.NewRegistry()
	}
	var tracer *obs.Tracer
	if *adminAddr != "" && *traceSpans > 0 {
		tracer = obs.NewTracer(*traceSpans, false)
	}
	sink, closeSink := openTrace(*tracePath)

	evalMode, err := datalog.ParseEvalMode(*mode)
	if err != nil {
		fatal(err)
	}
	opts := incr.Options{Mode: evalMode, Workers: *workers, Reg: reg, Sink: sink}

	if *shardCount > 0 {
		err := runCluster(*shardCount, *placement, *programPath, *inputPath, *restorePath,
			*listenAddr, *adminAddr, opts, serve.Options{
				WriteQueue:  *writeQueue,
				MaxBatch:    *maxBatch,
				Pipeline:    *pipeline,
				SnapshotDir: *snapshotDir,
				Reg:         reg,
			}, reg, tracer)
		closeSink()
		writeMetrics(reg, *metricsPath)
		if err != nil {
			fatal(err)
		}
		return
	}

	m, err := buildMaterialization(*programPath, *inputPath, *restorePath, opts)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "calmd: serving %d facts at seq %d\n", m.Len(), m.Seq())

	core := serve.NewCore(m, serve.Options{
		WriteQueue:  *writeQueue,
		MaxBatch:    *maxBatch,
		Pipeline:    *pipeline,
		SnapshotDir: *snapshotDir,
		Reg:         reg,
		Tracer:      tracer,
	})
	if *adminAddr != "" {
		adm, err := admin.Start(*adminAddr, admin.Options{
			Reg:          reg,
			Tracer:       tracer,
			BeforeScrape: epochAgeHook(reg),
			Health: func() (bool, any) {
				age := epochAge(reg)
				return true, map[string]any{
					"ok": true, "mode": "single", "seq": core.Seq(),
					"epoch_age_ns": age,
				}
			},
		})
		if err != nil {
			fatal(err)
		}
		defer adm.Close()
		fmt.Fprintf(os.Stderr, "calmd: admin on http://%s\n", adm.Addr())
	}
	if *listenAddr == "" {
		err := core.Serve(os.Stdin, os.Stdout)
		core.Close()
		if err != nil {
			closeSink()
			writeMetrics(reg, *metricsPath)
			fatal(err)
		}
	} else {
		srv, err := serve.NewTCPServer(core, *listenAddr, os.Stderr)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "calmd: listening on %s\n", srv.Addr())
		if err := srv.Serve(); err != nil {
			fatal(err)
		}
	}
	closeSink()
	writeMetrics(reg, *metricsPath)
}

// runCluster boots the sharded deployment: a cluster of shard cores
// behind a router serving the same protocol on stdio or TCP.
func runCluster(shards int, placement, programPath, inputPath, restorePath, listenAddr, adminAddr string,
	incrOpts incr.Options, serveOpts serve.Options, reg *obs.Registry, tracer *obs.Tracer) error {
	if restorePath != "" {
		return fmt.Errorf("-restore is not supported with -shards (snapshots are per-shard; restore each shard endpoint directly)")
	}
	if incrOpts.Sink != nil {
		return fmt.Errorf("-trace is not supported with -shards (per-shard event streams interleave nondeterministically)")
	}
	place, err := cluster.ParsePlacement(placement)
	if err != nil {
		return err
	}
	prog, input, err := loadProgram(programPath, inputPath)
	if err != nil {
		return err
	}
	c, err := cluster.New(prog, input, cluster.Options{
		Shards:    shards,
		Placement: place,
		Incr:      incrOpts,
		Serve:     serveOpts,
		Reg:       reg,
		Tracer:    tracer,
	})
	if err != nil {
		return err
	}
	defer c.Close()
	plan := c.Plan()
	fmt.Fprintf(os.Stderr, "calmd: %d shards, %s placement, %s plan (%s)\n",
		shards, place, plan.Coordination, plan.Reason)

	if adminAddr != "" {
		ageHook := epochAgeHook(reg)
		adm, err := admin.Start(adminAddr, admin.Options{
			Reg:    reg,
			Tracer: tracer,
			BeforeScrape: func() {
				ageHook()
				c.PublishHealth()
			},
			Health: func() (bool, any) {
				logLen, hs := c.Health()
				ok := true
				for _, h := range hs {
					if h.Down {
						ok = false
					}
				}
				return ok, map[string]any{
					"ok": ok, "mode": "cluster", "shards": len(hs), "log": logLen,
					"plan": string(plan.Coordination), "health": hs,
					"epoch_age_ns": epochAge(reg),
				}
			},
		})
		if err != nil {
			return err
		}
		defer adm.Close()
		fmt.Fprintf(os.Stderr, "calmd: admin on http://%s\n", adm.Addr())
	}

	router := cluster.NewRouter(c)
	if listenAddr == "" {
		return router.Serve(os.Stdin, os.Stdout)
	}
	srv, err := serve.NewTCPServerFor(router, listenAddr, os.Stderr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "calmd: listening on %s\n", srv.Addr())
	return srv.Serve()
}

// loadProgram reads and parses the program and optional initial
// instance.
func loadProgram(programPath, inputPath string) (*datalog.Program, *fact.Instance, error) {
	if programPath == "" {
		return nil, nil, fmt.Errorf("-program is required unless -restore is given")
	}
	src, err := os.ReadFile(programPath)
	if err != nil {
		return nil, nil, err
	}
	prog, err := datalog.ParseProgram(string(src))
	if err != nil {
		return nil, nil, err
	}
	input := fact.NewInstance()
	if inputPath != "" {
		data, err := os.ReadFile(inputPath)
		if err != nil {
			return nil, nil, err
		}
		input, err = fact.ParseInstance(string(data))
		if err != nil {
			return nil, nil, err
		}
	}
	return prog, input, nil
}

// buildMaterialization constructs the daemon state either from a
// snapshot or from a program plus optional initial instance.
func buildMaterialization(programPath, inputPath, restorePath string, opts incr.Options) (*incr.Materialization, error) {
	if restorePath != "" {
		if programPath != "" || inputPath != "" {
			return nil, fmt.Errorf("-restore is exclusive with -program/-input (the snapshot embeds the program)")
		}
		f, err := os.Open(restorePath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return incr.Restore(f, opts)
	}
	prog, input, err := loadProgram(programPath, inputPath)
	if err != nil {
		return nil, err
	}
	return incr.New(prog, input, opts)
}

// openTrace opens the JSONL event sink ("" = disabled, "-" = stdout).
func openTrace(path string) (*obs.Sink, func()) {
	switch path {
	case "":
		return nil, func() {}
	case "-":
		sink := obs.NewSink(os.Stdout)
		return sink, func() { checkSink(sink) }
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	sink := obs.NewSink(f)
	return sink, func() {
		checkSink(sink)
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
}

func checkSink(sink *obs.Sink) {
	if err := sink.Err(); err != nil {
		fatal(fmt.Errorf("writing trace: %w", err))
	}
}

// writeMetrics dumps the registry as JSON ("" = disabled, "-" = stdout).
func writeMetrics(reg *obs.Registry, path string) {
	if reg == nil || path == "" {
		return
	}
	if path == "-" {
		if err := reg.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := reg.WriteJSON(f); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
}

// epochAge returns wall-clock nanoseconds since the last epoch
// publication, or 0 before the first commit.
func epochAge(reg *obs.Registry) int64 {
	last := reg.Gauge(obs.SrvLastCommitUnixNs).Value()
	if last == 0 {
		return 0
	}
	return time.Now().UnixNano() - last
}

// epochAgeHook refreshes the srv.epoch_age_ns scrape-time gauge —
// run by the admin server before each /metrics and /healthz render,
// so the serving hot path never touches the clock for it.
func epochAgeHook(reg *obs.Registry) func() {
	return func() {
		reg.Gauge(obs.SrvEpochAgeNs).Set(epochAge(reg))
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "calmd: %v\n", err)
	os.Exit(1)
}

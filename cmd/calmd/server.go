package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"repro/internal/fact"
	"repro/internal/incr"
)

// The calmd protocol is newline-delimited JSON: one request object per
// line in, one response object per line out, in order. Requests:
//
//	{"op":"ping"}
//	{"op":"insert","facts":["E(a,b)","E(b,c)"]}
//	{"op":"retract","facts":["E(a,b)"]}
//	{"op":"apply","insert":["E(a,b)"],"retract":["E(c,d)"]}
//	{"op":"query","rel":"T"}
//	{"op":"facts"}
//	{"op":"stats"}
//	{"op":"snapshot","path":"state.snap"}
//
// Responses always carry "ok"; failures carry "error" and leave the
// materialization untouched (delta validation happens before any
// mutation). Mutating ops report the apply stats and the new sequence
// number. Query responses are a pure function of the materialized
// state — no sequence numbers or timestamps — so a daemon restored
// from a snapshot answers byte-identically to the one that wrote it.

type request struct {
	Op      string   `json:"op"`
	Facts   []string `json:"facts,omitempty"`
	Insert  []string `json:"insert,omitempty"`
	Retract []string `json:"retract,omitempty"`
	Rel     string   `json:"rel,omitempty"`
	Path    string   `json:"path,omitempty"`
}

type applyBody struct {
	Inserted  int `json:"inserted"`
	Retracted int `json:"retracted"`
	Added     int `json:"added"`
	Removed   int `json:"removed"`
}

type statsBody struct {
	Seq     int `json:"seq"`
	Facts   int `json:"facts"`
	Base    int `json:"base"`
	Derived int `json:"derived"`
}

type response struct {
	OK  bool   `json:"ok"`
	Err string `json:"error,omitempty"`
	// Seq is a pointer so that sequence number 0 — a no-op delta on a
	// fresh daemon — still reaches the wire; omitempty on a plain int
	// would drop it. Query responses leave it nil on purpose: they must
	// stay a pure function of the materialized state.
	Seq   *int       `json:"seq,omitempty"`
	Apply *applyBody `json:"apply,omitempty"`
	Stats *statsBody `json:"stats,omitempty"`
	Count *int       `json:"count,omitempty"`
	Facts []string   `json:"facts,omitempty"`
	Path  string     `json:"path,omitempty"`
}

// server serializes access to one materialization. Connections share
// the server; the mutex makes each request atomic.
type server struct {
	mu sync.Mutex
	m  *incr.Materialization
}

func newServer(m *incr.Materialization) *server { return &server{m: m} }

func errResp(format string, args ...any) response {
	return response{Err: fmt.Sprintf(format, args...)}
}

func parseFacts(strs []string) ([]fact.Fact, error) {
	out := make([]fact.Fact, 0, len(strs))
	for _, s := range strs {
		f, err := fact.ParseFact(s)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

func factStrings(fs []fact.Fact) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.String()
	}
	sort.Strings(out)
	return out
}

func (s *server) handle(req request) response {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch req.Op {
	case "ping":
		return response{OK: true}

	case "insert", "retract", "apply":
		var d incr.Delta
		var err error
		switch req.Op {
		case "insert":
			d.Insert, err = parseFacts(req.Facts)
		case "retract":
			d.Retract, err = parseFacts(req.Facts)
		default:
			if d.Insert, err = parseFacts(req.Insert); err == nil {
				d.Retract, err = parseFacts(req.Retract)
			}
		}
		if err != nil {
			return errResp("bad fact: %v", err)
		}
		st, err := s.m.Apply(d)
		if err != nil {
			return errResp("%v", err)
		}
		seq := s.m.Seq()
		return response{OK: true, Seq: &seq, Apply: &applyBody{
			Inserted:  st.BaseInserted,
			Retracted: st.BaseRetracted,
			Added:     st.DerivedAdded,
			Removed:   st.DerivedRemoved,
		}}

	case "query":
		if req.Rel == "" {
			return errResp("query needs a rel")
		}
		facts := factStrings(s.m.Rel(req.Rel))
		n := len(facts)
		return response{OK: true, Count: &n, Facts: facts}

	case "facts":
		facts := factStrings(s.m.Instance().Facts())
		n := len(facts)
		return response{OK: true, Count: &n, Facts: facts}

	case "stats":
		return response{OK: true, Stats: &statsBody{
			Seq:     s.m.Seq(),
			Facts:   s.m.Len(),
			Base:    s.m.Base().Len(),
			Derived: s.m.Len() - s.m.Base().Len(),
		}}

	case "snapshot":
		if req.Path == "" {
			return errResp("snapshot needs a path")
		}
		f, err := os.Create(req.Path)
		if err != nil {
			return errResp("%v", err)
		}
		if err := s.m.Snapshot(f); err != nil {
			f.Close()
			return errResp("%v", err)
		}
		if err := f.Close(); err != nil {
			return errResp("%v", err)
		}
		return response{OK: true, Path: req.Path}

	default:
		return errResp("unknown op %q", req.Op)
	}
}

// serve runs the request loop until EOF. Malformed JSON produces an
// error response and the loop continues; only I/O errors end it. A
// scanner failure (e.g. a line over the 16MiB buffer) is not a clean
// shutdown: the client gets one final error response before the
// stream closes, and the error propagates to the caller so the
// stdin/stdout daemon exits non-zero.
func (s *server) serve(r io.Reader, w io.Writer) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var req request
		var resp response
		if err := json.Unmarshal(line, &req); err != nil {
			resp = errResp("bad request: %v", err)
		} else {
			resp = s.handle(req)
		}
		if err := enc.Encode(resp); err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		// Best-effort: the write side may be gone too.
		if werr := enc.Encode(errResp("read: %v", err)); werr == nil {
			bw.Flush()
		}
		return fmt.Errorf("read: %w", err)
	}
	return nil
}

package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/datalog"
	"repro/internal/incr"
	"repro/internal/serve"
)

const testProgram = `
T(x,y) :- E(x,y).
T(x,y) :- E(x,z), T(z,y).
OnLoop(x) :- T(x,x).
Off(x) :- E(x,y), !OnLoop(x).
Off(y) :- E(x,y), !OnLoop(y).
`

const testInput = `
E(a,b)
E(b,c)
E(c,d)
`

// runScript drives a serving core's request loop in-process and
// returns one response line per request line.
func runScript(t *testing.T, core *serve.Core, script []string) []string {
	t.Helper()
	var out strings.Builder
	if err := core.Serve(strings.NewReader(strings.Join(script, "\n")+"\n"), &out); err != nil {
		t.Fatalf("serve: %v", err)
	}
	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	if len(lines) != len(script) {
		t.Fatalf("got %d responses for %d requests:\n%s", len(lines), len(script), out.String())
	}
	return lines
}

func mustOK(t *testing.T, line string) serve.Response {
	t.Helper()
	var resp serve.Response
	if err := json.Unmarshal([]byte(line), &resp); err != nil {
		t.Fatalf("bad response %q: %v", line, err)
	}
	if !resp.OK {
		t.Fatalf("request failed: %s", line)
	}
	return resp
}

func writeTempFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func newCore(t *testing.T, m *incr.Materialization) *serve.Core {
	t.Helper()
	core := serve.NewCore(m, serve.Options{})
	t.Cleanup(core.Close)
	return core
}

// TestEndToEndSnapshotRestart is the acceptance script: load a
// program, apply deltas, query, snapshot, restart a fresh daemon from
// the snapshot, and require byte-identical responses to the same
// queries.
func TestEndToEndSnapshotRestart(t *testing.T) {
	progPath := writeTempFile(t, "prog.dl", testProgram)
	inputPath := writeTempFile(t, "input.facts", testInput)
	snapPath := filepath.Join(t.TempDir(), "state.snap")

	m, err := buildMaterialization(progPath, inputPath, "", incr.Options{})
	if err != nil {
		t.Fatalf("buildMaterialization: %v", err)
	}
	core := newCore(t, m)

	queries := []string{
		`{"op":"query","rel":"T"}`,
		`{"op":"query","rel":"Off"}`,
		`{"op":"query","rel":"OnLoop"}`,
		`{"op":"facts"}`,
		`{"op":"stats"}`,
	}
	session := append([]string{
		`{"op":"ping"}`,
		`{"op":"insert","facts":["E(d,a)"]}`,          // close the cycle: Off drains
		`{"op":"apply","retract":["E(b,c)"]}`,         // cut it again mid-loop
		`{"op":"insert","facts":["E(b,c)","E(d,e)"]}`, // re-add plus a tail
		`{"op":"snapshot","path":"` + snapPath + `"}`,
	}, queries...)
	resp1 := runScript(t, core, session)
	for _, line := range resp1 {
		mustOK(t, line)
	}
	var tResp serve.Response
	if err := json.Unmarshal([]byte(resp1[len(session)-len(queries)]), &tResp); err != nil {
		t.Fatal(err)
	}
	if tResp.Count == nil || *tResp.Count == 0 {
		t.Fatalf("query T returned no facts: %s", resp1[len(session)-len(queries)])
	}

	// Restart: a fresh daemon restored from the snapshot.
	m2, err := buildMaterialization("", "", snapPath, incr.Options{Mode: datalog.Parallel, Workers: 3})
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if err := m2.Verify(); err != nil {
		t.Fatalf("restored Verify: %v", err)
	}
	core2 := newCore(t, m2)
	resp2 := runScript(t, core2, queries)
	for i, q := range queries {
		want := resp1[len(session)-len(queries)+i]
		if resp2[i] != want {
			t.Errorf("response to %s diverged across restart:\n before: %s\n after:  %s", q, want, resp2[i])
		}
	}

	// The restored daemon keeps maintaining incrementally.
	resp3 := runScript(t, core2, []string{
		`{"op":"retract","facts":["E(d,a)"]}`,
		`{"op":"query","rel":"Off"}`,
	})
	off := mustOK(t, resp3[1])
	if len(off.Facts) == 0 {
		t.Fatalf("Off empty after reopening the cycle: %s", resp3[1])
	}
	if err := m2.Verify(); err != nil {
		t.Fatalf("post-restart Verify: %v", err)
	}
}

// TestProtocolErrors checks that bad requests answer with ok:false and
// leave the daemon serving.
func TestProtocolErrors(t *testing.T) {
	m, err := incr.New(datalog.MustParseProgram(testProgram), nil, incr.Options{})
	if err != nil {
		t.Fatal(err)
	}
	core := newCore(t, m)
	script := []string{
		`{"op":"nonsense"}`,
		`not json at all`,
		`{"op":"query"}`,
		`{"op":"insert","facts":["T(a,b)"]}`, // idb insert rejected
		`{"op":"insert","facts":["E(a"]}`,    // parse error
		`{"op":"snapshot"}`,
		`{"op":"ping"}`,
	}
	resps := runScript(t, core, script)
	for i := 0; i < len(script)-1; i++ {
		var resp serve.Response
		if err := json.Unmarshal([]byte(resps[i]), &resp); err != nil {
			t.Fatalf("bad response %q: %v", resps[i], err)
		}
		if resp.OK || resp.Err == "" {
			t.Errorf("request %s: want error response, got %s", script[i], resps[i])
		}
	}
	mustOK(t, resps[len(script)-1])
	if m.Len() != 0 {
		t.Fatalf("rejected requests mutated state: %d facts", m.Len())
	}
}

// TestSeqZeroOnWire is the protocol round-trip for the omitempty bug:
// a mutating op answered at sequence number 0 (a no-op delta on a
// fresh daemon) must still emit "seq":0 on the wire, while query
// responses must stay seq-free so they remain a pure function of the
// materialized state.
func TestSeqZeroOnWire(t *testing.T) {
	m, err := incr.New(datalog.MustParseProgram(testProgram), nil, incr.Options{})
	if err != nil {
		t.Fatal(err)
	}
	core := newCore(t, m)
	script := []string{
		`{"op":"retract","facts":["E(zz,zz)"]}`, // no-op delta: seq stays 0
		`{"op":"query","rel":"T"}`,
		`{"op":"insert","facts":["E(a,b)"]}`, // first real delta: seq 1
	}
	resps := runScript(t, core, script)

	noop := mustOK(t, resps[0])
	if noop.Seq == nil || *noop.Seq != 0 {
		t.Fatalf("no-op delta on fresh daemon: want seq 0 on the wire, got %s", resps[0])
	}
	if !strings.Contains(resps[0], `"seq":0`) {
		t.Fatalf(`raw response lost "seq":0: %s`, resps[0])
	}

	q := mustOK(t, resps[1])
	if q.Seq != nil || strings.Contains(resps[1], `"seq"`) {
		t.Fatalf("query response must not carry a seq: %s", resps[1])
	}

	ins := mustOK(t, resps[2])
	if ins.Seq == nil || *ins.Seq != 1 {
		t.Fatalf("first applied delta: want seq 1, got %s", resps[2])
	}
}

// TestServeOversizedLine checks a request line over the scanner buffer
// is not a clean shutdown: the client sees a final error response and
// serve returns the scanner error (so the stdin daemon exits non-zero).
func TestServeOversizedLine(t *testing.T) {
	m, err := incr.New(datalog.MustParseProgram(testProgram), nil, incr.Options{})
	if err != nil {
		t.Fatal(err)
	}
	core := newCore(t, m)
	in := `{"op":"ping"}` + "\n" + `{"op":"insert","facts":["` +
		strings.Repeat("x", 17*1024*1024) + `"]}` + "\n"
	var out strings.Builder
	err = core.Serve(strings.NewReader(in), &out)
	if err == nil {
		t.Fatal("serve returned nil for an oversized request line")
	}
	if !strings.Contains(err.Error(), bufio.ErrTooLong.Error()) {
		t.Fatalf("serve error = %v, want it to wrap %v", err, bufio.ErrTooLong)
	}
	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d response lines, want ping response + final error:\n%s", len(lines), out.String())
	}
	mustOK(t, lines[0])
	var last serve.Response
	if err := json.Unmarshal([]byte(lines[1]), &last); err != nil {
		t.Fatalf("bad final response %q: %v", lines[1], err)
	}
	if last.OK || !strings.Contains(last.Err, bufio.ErrTooLong.Error()) {
		t.Fatalf("final response does not surface the scanner error: %s", lines[1])
	}
}

// TestServeSkipsBlankLines checks request framing tolerates blank
// lines and that responses stay one-per-request.
func TestServeSkipsBlankLines(t *testing.T) {
	m, err := incr.New(datalog.MustParseProgram(testProgram), nil, incr.Options{})
	if err != nil {
		t.Fatal(err)
	}
	core := newCore(t, m)
	var out strings.Builder
	in := "\n{\"op\":\"ping\"}\n\n{\"op\":\"stats\"}\n\n"
	if err := core.Serve(strings.NewReader(in), &out); err != nil {
		t.Fatalf("serve: %v", err)
	}
	sc := bufio.NewScanner(strings.NewReader(out.String()))
	var n int
	for sc.Scan() {
		mustOK(t, sc.Text())
		n++
	}
	if n != 2 {
		t.Fatalf("got %d responses, want 2", n)
	}
}

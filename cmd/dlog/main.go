// Command dlog evaluates Datalog¬ programs: it parses a program and an
// input instance, reports the program's fragment classification
// (Figure 2 of the paper), and prints the derived facts — under the
// stratified semantics by default, or under the well-founded semantics
// with -wfs (needed for non-stratifiable programs such as win-move).
//
// Usage:
//
//	dlog -program tc.dl -input graph.facts [-out O] [-mode seminaive]
//	dlog -program winmove.dl -input game.facts -wfs
//
// Program syntax: one rule per line, e.g.
//
//	T(x,y) :- E(x,y).
//	T(x,z) :- T(x,y), E(y,z).
//	O(x)   :- Adom(x), !T(x,x).
//
// Input syntax: one fact per line, e.g. "E(a,b)". With -adom, rules
// defining the conventional Adom relation are appended automatically.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/admin"
	"repro/internal/datalog"
	"repro/internal/fact"
	"repro/internal/ilog"
	"repro/internal/obs"
	"repro/internal/queries"
)

func main() {
	var (
		programPath = flag.String("program", "", "path to the Datalog¬ program (required)")
		inputPath   = flag.String("input", "", "path to the input instance (default: empty instance)")
		outRels     = flag.String("out", "", "comma-separated output relations (default: print all derived facts)")
		mode        = flag.String("mode", "seminaive", "fixpoint evaluation mode: seminaive, naive or parallel")
		workers     = flag.Int("workers", 0, "worker goroutines for -mode parallel and -ilog (0 = GOMAXPROCS)")
		wfs         = flag.Bool("wfs", false, "evaluate under the well-founded semantics (alternating fixpoint)")
		useIlog     = flag.Bool("ilog", false, "parse as an ILOG¬ program with invention heads like Id(*, x, y)")
		adom        = flag.Bool("adom", false, "append rules computing the conventional Adom relation")
		classify    = flag.Bool("classify", true, "print the fragment classification")
		metricsPath = flag.String("metrics", "", `write engine metrics (dl.* / ilog.* counters) as JSON to this file ("-" = stdout)`)
		tracePath   = flag.String("trace", "", `write structured JSONL evaluation events to this file ("-" = stdout)`)
		pprofAddr   = flag.String("pprof", "", "serve the admin endpoint (/metrics /debug/pprof) on this address (e.g. localhost:6060)")
	)
	flag.Parse()
	if *programPath == "" {
		fmt.Fprintln(os.Stderr, "dlog: -program is required")
		flag.Usage()
		os.Exit(2)
	}

	src, err := os.ReadFile(*programPath)
	if err != nil {
		fatal(err)
	}

	input := fact.NewInstance()
	if *inputPath != "" {
		data, err := os.ReadFile(*inputPath)
		if err != nil {
			fatal(err)
		}
		input, err = fact.ParseInstance(string(data))
		if err != nil {
			fatal(err)
		}
	}

	var reg *obs.Registry
	if *metricsPath != "" || *pprofAddr != "" {
		reg = obs.NewRegistry()
	}
	startAdmin(*pprofAddr, reg)
	sink, closeSink := openTrace(*tracePath)

	if *useIlog {
		runIlog(string(src), input, *outRels, *workers, reg, sink)
		closeSink()
		writeMetrics(reg, *metricsPath)
		return
	}

	prog, err := datalog.ParseProgram(string(src))
	if err != nil {
		fatal(err)
	}
	if *adom {
		prog = datalog.WithAdomRules(prog)
	}

	if *classify {
		fmt.Printf("fragment: %s\n", prog.Classify())
		fmt.Printf("edb: %v  idb: %v\n", prog.EDB(), prog.IDB())
	}

	if *wfs {
		res, err := queries.WellFounded(prog, input)
		if err != nil {
			fatal(err)
		}
		printFacts("true", filterRels(res.True.Minus(input), *outRels))
		printFacts("undefined", filterRels(res.Undefined, *outRels))
		closeSink()
		writeMetrics(reg, *metricsPath)
		return
	}

	evalMode, err := datalog.ParseEvalMode(*mode)
	if err != nil {
		fatal(err)
	}
	opts := datalog.FixpointOptions{Mode: evalMode, Workers: *workers, Reg: reg, Sink: sink}
	out, err := prog.EvalStratified(input, opts)
	if err != nil {
		fatal(err)
	}
	printFacts("derived", filterRels(out.Minus(input), *outRels))
	closeSink()
	writeMetrics(reg, *metricsPath)
}

// runIlog parses and evaluates an ILOG¬ program with invention.
func runIlog(src string, input *fact.Instance, outRels string, workers int, reg *obs.Registry, sink *obs.Sink) {
	prog, err := ilog.ParseProgram(src)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("semi-connected: %v\n", prog.IsSemiConnected())
	full, err := prog.Eval(input, ilog.Options{Workers: workers, Reg: reg, Sink: sink})
	if err != nil {
		fatal(err)
	}
	printFacts("derived", filterRels(full.Minus(input), outRels))
}

// filterRels restricts the instance to the named relations ("" keeps all).
func filterRels(i *fact.Instance, rels string) *fact.Instance {
	if rels == "" {
		return i
	}
	out := fact.NewInstance()
	for _, rel := range strings.Split(rels, ",") {
		out.AddAll(i.RestrictRel(strings.TrimSpace(rel)))
	}
	return out
}

func printFacts(label string, i *fact.Instance) {
	fmt.Printf("%s (%d facts):\n", label, i.Len())
	for _, f := range i.Facts() {
		fmt.Printf("  %s\n", f)
	}
}

// openTrace opens the JSONL event sink ("" = disabled, "-" = stdout).
// The returned close function flushes the file and surfaces any write
// error latched by the sink.
func openTrace(path string) (*obs.Sink, func()) {
	switch path {
	case "":
		return nil, func() {}
	case "-":
		sink := obs.NewSink(os.Stdout)
		return sink, func() { checkSink(sink) }
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	sink := obs.NewSink(f)
	return sink, func() {
		checkSink(sink)
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
}

func checkSink(sink *obs.Sink) {
	if err := sink.Err(); err != nil {
		fatal(fmt.Errorf("writing trace: %w", err))
	}
}

// writeMetrics dumps the registry as JSON ("" = disabled, "-" = stdout).
func writeMetrics(reg *obs.Registry, path string) {
	if reg == nil || path == "" {
		return
	}
	if path == "-" {
		if err := reg.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := reg.WriteJSON(f); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dlog: %v\n", err)
	os.Exit(1)
}

// startAdmin serves the shared admin endpoint (/metrics /debug/pprof)
// in the background ("" = disabled) — the same routes calmd's -admin
// exposes, so one curl recipe profiles every binary in the repo.
func startAdmin(addr string, reg *obs.Registry) {
	if addr == "" {
		return
	}
	adm, err := admin.Start(addr, admin.Options{Reg: reg})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dlog: admin: %v\n", err)
		return
	}
	fmt.Fprintf(os.Stderr, "dlog: admin on http://%s\n", adm.Addr())
}

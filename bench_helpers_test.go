package repro_test

import "math/rand"

// newRand returns a deterministic source for benchmark workloads.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
